#include "core/engine.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "util/cancellation.h"
#include "util/concurrency.h"
#include "util/logging.h"
#include "util/timer.h"
#include "util/trace.h"

namespace kpj {
namespace {

/// JSON has no NaN/Inf literals; exposition substitutes 0 so downstream
/// parsers never choke on a freshly reset (empty) histogram.
double FiniteOrZero(double v) { return std::isfinite(v) ? v : 0.0; }

}  // namespace

unsigned KpjEngine::ResolveThreads(const KpjEngineOptions& options) {
  return ResolveWorkerCount(options.threads, options.clamp_to_hardware);
}

KpjEngine::KpjEngine(const KpjInstance& instance, KpjEngineOptions options)
    : instance_(instance),
      options_(std::move(options)),
      pool_(ResolveThreads(options_)),
      solvers_(pool_.num_workers()),
      planner_(std::make_unique<QueryPlanner>(instance, options_.solver,
                                              options_.planner)) {
  // Eagerly build one solver per worker so the first queries do not pay
  // the O(n) workspace allocations, and so construction fails fast if the
  // options are unusable. In auto mode the warm column is the planner's
  // cold default; its other choices fill the grid lazily on first use.
  Algorithm warm = options_.solver.algorithm;
  if (warm == Algorithm::kAuto) {
    warm = instance_.oracle() != nullptr || options_.solver.oracle != nullptr
               ? Algorithm::kIterBoundSptI
               : Algorithm::kIterBoundSptINoLm;
  }
  KpjOptions warm_options = options_.solver;
  warm_options.algorithm = warm;
  for (unsigned w = 0; w < pool_.num_workers(); ++w) {
    solvers_[w][PlannerIndex(warm)] = MakeSolver(instance_, warm_options);
  }
  if (options_.cache_mb > 0) {
    size_t budget = options_.cache_mb * size_t{1024} * 1024;
    // The SPT substrate dominates (full trees vs. per-landmark scalars).
    spt_cache_ = std::make_unique<SptCache>(budget - budget / 4);
    bound_cache_ = std::make_unique<TargetBoundCache>(budget / 4);
    purged_epoch_.store(instance_.epoch(), std::memory_order_relaxed);
  }
}

KpjSolver* KpjEngine::SolverFor(unsigned worker, Algorithm algorithm) {
  std::unique_ptr<KpjSolver>& slot = solvers_[worker][PlannerIndex(algorithm)];
  if (slot == nullptr) {
    KpjOptions options = options_.solver;
    options.algorithm = algorithm;
    slot = MakeSolver(instance_, options);
  }
  return slot.get();
}

Result<KpjResult> KpjEngine::RunOne(const KpjQuery& query, double deadline_ms,
                                    unsigned worker, uint64_t query_id,
                                    const QueryContext& context) {
  CancellationToken token;
  const CancellationToken* cancel = nullptr;
  if (deadline_ms > 0.0) {
    token.SetDeadlineAfterMs(deadline_ms);
    cancel = &token;
  }

  QueryCacheContext cache_ctx;
  const QueryCacheContext* cache = nullptr;
  if (spt_cache_ != nullptr) {
    uint64_t epoch = instance_.epoch();
    uint64_t seen = purged_epoch_.load(std::memory_order_acquire);
    if (seen != epoch && purged_epoch_.compare_exchange_strong(
                             seen, epoch, std::memory_order_acq_rel)) {
      spt_cache_->PurgeOlderEpochs(epoch);
      bound_cache_->PurgeOlderEpochs(epoch);
    }
    cache_ctx.spt = spt_cache_.get();
    cache_ctx.bounds = bound_cache_.get();
    cache_ctx.epoch = epoch;
    cache = &cache_ctx;
  }

  // Resolve this query's algorithm: the per-query override wins over the
  // engine configuration; kAuto (from either) engages the planner. A
  // fixed algorithm never consults the planner at all.
  KpjOptions run_options = options_.solver;
  run_options.algorithm =
      context.algorithm.value_or(options_.solver.algorithm);
  const bool planned = run_options.algorithm == Algorithm::kAuto;
  const char* planner_reason = "";
  bool planner_resident = false;
  uint64_t planner_shape_fp = 0;
  if (planned) {
    PlannerDecision decision =
        planner_->Plan(query, cache_ctx.spt, cache_ctx.epoch);
    run_options.algorithm = decision.algorithm;
    planner_reason = decision.reason;
    planner_resident = decision.resident;
    planner_shape_fp = decision.shape_fp;
    metrics_.planner_choice[PlannerIndex(decision.algorithm)].Increment();
    if (decision.fallback) metrics_.planner_fallback.Increment();
  }
  // Satellite of the planner work: algorithms whose measured SPT-cache
  // hit benefit is negative must not pay the insert (sptp.cc skips the
  // snapshot export and counts spt_cache_insert_skips).
  cache_ctx.allow_sptp_insert =
      QueryPlanner::SptInsertBeneficial(run_options.algorithm);

  // Resolve this query's intra-parallelism fan-out against the current
  // load *after* counting ourselves in, so a lone query sees active == 1
  // and claims the whole pool under the auto-split policy.
  unsigned active =
      active_queries_.fetch_add(1, std::memory_order_relaxed) + 1;
  unsigned intra_lanes = options_.intra_threads;
  if (intra_lanes == 0) {
    intra_lanes = std::max(1u, pool_.num_workers() / std::max(1u, active));
  } else if (options_.clamp_to_hardware) {
    intra_lanes = EffectiveWorkers(intra_lanes);
  }
  IntraQueryContext intra_ctx;
  const IntraQueryContext* intra = nullptr;
  if (intra_lanes > 1) {
    intra_ctx.pool = &pool_;
    intra_ctx.threads = intra_lanes;
    intra_ctx.steals = &metrics_.intra_steals;
    intra_ctx.parallel_rounds = &metrics_.intra_parallel_rounds;
    intra_ctx.fanout = &metrics_.intra_fanout;
    intra = &intra_ctx;
  }

  Timer timer;
  // Result<T> has no default constructor; the placeholder is overwritten.
  Result<KpjResult> result = Status::FailedPrecondition("query not executed");
  {
    // Bind the request's trace id to this worker thread for the duration of
    // the query: the engine.query span below and every solver span beneath
    // it inherit the id, so wire-level traces stitch end to end.
    TraceContext trace_ctx(context.trace_id);
    KPJ_TRACE_SPAN("engine.query");
    result = RunKpjOnInstance(instance_, query, run_options,
                              SolverFor(worker, run_options.algorithm),
                              cancel, cache, intra);
  }
  active_queries_.fetch_sub(1, std::memory_order_relaxed);
  double elapsed_ms = timer.ElapsedMillis();
  metrics_.latency.Record(elapsed_ms);

  if (planned && result.ok()) {
    // Feed the rolling profile (no-op for pinned planners) and stamp the
    // decision provenance so api/server layers can report it.
    planner_->RecordLatency(run_options.algorithm, planner_resident,
                            planner_shape_fp, elapsed_ms);
    result.value().planner_reason = planner_reason;
  }

  if (!result.ok()) {
    metrics_.queries_failed.Increment();
    return result;
  }
  const KpjResult& r = result.value();
  if (r.status.ok()) {
    metrics_.queries_served.Increment();
  } else {
    metrics_.deadline_exceeded.Increment();
  }
  metrics_.paths_returned.Add(r.paths.size());
  metrics_.heap_pops.Add(r.stats.nodes_settled);
  metrics_.edges_relaxed.Add(r.stats.edges_relaxed);
  metrics_.sp_computations.Add(r.stats.shortest_path_computations);
  metrics_.algo.Add(r.stats.algo);

  if (options_.slow_query_ms > 0.0 &&
      (elapsed_ms >= options_.slow_query_ms || !r.status.ok())) {
    metrics_.slow_queries.Increment();
    internal::LogMessage log(LogLevel::kWarning, __FILE__, __LINE__);
    log << "slow query id=" << query_id;
    if (context.trace_id != 0) {
      log << " trace_id=" << FormatTraceId(context.trace_id);
    }
    log << " took " << elapsed_ms << " ms (threshold "
        << options_.slow_query_ms << " ms";
    if (deadline_ms > 0.0) {
      log << ", " << 100.0 * elapsed_ms / deadline_ms << "% of the "
          << deadline_ms << " ms deadline";
    }
    log << ") queue_ms=" << context.queue_ms
        << " algorithm=" << AlgorithmName(r.algorithm_used)
        << " expansions=" << r.stats.algo.node_expansions
        << " paths=" << r.paths.size();
    if (planned && r.planner_reason[0] != '\0') {
      log << " planner_reason=" << r.planner_reason;
    }
    if (!r.status.ok()) log << " status=" << r.status.ToString();
  }
  return result;
}

std::future<Result<KpjResult>> KpjEngine::Submit(KpjQuery query) {
  return Submit(std::move(query), options_.default_deadline_ms);
}

std::future<Result<KpjResult>> KpjEngine::Submit(KpjQuery query,
                                                 double deadline_ms) {
  return Submit(std::move(query), deadline_ms, QueryContext{});
}

std::future<Result<KpjResult>> KpjEngine::Submit(KpjQuery query,
                                                 double deadline_ms,
                                                 QueryContext context) {
  // ThreadPool::Task is a std::function (copyable), so the per-task state
  // lives behind a shared_ptr.
  struct PendingQuery {
    KpjQuery query;
    std::promise<Result<KpjResult>> promise;
  };
  auto pending = std::make_shared<PendingQuery>();
  pending->query = std::move(query);
  std::future<Result<KpjResult>> future = pending->promise.get_future();
  uint64_t id = next_query_id_.fetch_add(1, std::memory_order_relaxed);
  pool_.Submit([this, pending, deadline_ms, id, context](unsigned worker) {
    pending->promise.set_value(
        RunOne(pending->query, deadline_ms, worker, id, context));
  });
  return future;
}

std::vector<Result<KpjResult>> KpjEngine::RunBatch(
    std::span<const KpjQuery> queries) {
  return RunBatch(queries, options_.default_deadline_ms);
}

std::vector<Result<KpjResult>> KpjEngine::RunBatch(
    std::span<const KpjQuery> queries, double deadline_ms) {
  return RunBatch(queries, deadline_ms, QueryContext{});
}

std::vector<Result<KpjResult>> KpjEngine::RunBatch(
    std::span<const KpjQuery> queries, double deadline_ms,
    QueryContext context) {
  // Result<T> has no default constructor; prefill with a placeholder that
  // every executed index overwrites.
  std::vector<Result<KpjResult>> results;
  results.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    results.emplace_back(Status::FailedPrecondition("query not executed"));
  }
  // Ids are assigned by input position so a batch query's id does not
  // depend on worker scheduling.
  uint64_t base_id =
      next_query_id_.fetch_add(queries.size(), std::memory_order_relaxed);
  pool_.ParallelFor(queries.size(), [&](size_t i, unsigned worker) {
    results[i] = RunOne(queries[i], deadline_ms, worker, base_id + i, context);
  });
  return results;
}

EngineMetricsSnapshot KpjEngine::MetricsSnapshot() const {
  EngineMetricsSnapshot snap;
  snap.queries_served = metrics_.queries_served.value();
  snap.queries_failed = metrics_.queries_failed.value();
  snap.deadline_exceeded = metrics_.deadline_exceeded.value();
  snap.paths_returned = metrics_.paths_returned.value();
  snap.heap_pops = metrics_.heap_pops.value();
  snap.edges_relaxed = metrics_.edges_relaxed.value();
  snap.sp_computations = metrics_.sp_computations.value();
  snap.slow_queries = metrics_.slow_queries.value();
  snap.latency_count = metrics_.latency.count();
  snap.latency_mean_ms = metrics_.latency.Mean();
  snap.latency_min_ms = metrics_.latency.min_ms();
  snap.latency_max_ms = metrics_.latency.max_ms();
  snap.latency_p50_ms = metrics_.latency.Percentile(50.0);
  snap.latency_p90_ms = metrics_.latency.Percentile(90.0);
  snap.latency_p99_ms = metrics_.latency.Percentile(99.0);
  snap.algo = metrics_.algo.Snapshot();
  snap.intra_steals = metrics_.intra_steals.value();
  snap.intra_parallel_rounds = metrics_.intra_parallel_rounds.value();
  snap.intra_fanout_count = metrics_.intra_fanout.count();
  snap.intra_fanout_mean = metrics_.intra_fanout.Mean();
  snap.intra_fanout_max = metrics_.intra_fanout.max_ms();
  for (size_t a = 0; a < kNumPlannableAlgorithms; ++a) {
    snap.planner_choice[a] = metrics_.planner_choice[a].value();
  }
  snap.planner_fallback = metrics_.planner_fallback.value();
  if (spt_cache_ != nullptr) {
    SptCacheStats spt = spt_cache_->StatsSnapshot();
    TargetBoundCacheStats bounds = bound_cache_->StatsSnapshot();
    snap.spt_cache_insertions = spt.insertions;
    snap.spt_cache_evictions = spt.evictions;
    snap.bound_cache_evictions = bounds.evictions;
    snap.cache_bytes = spt.bytes + bounds.bytes;
  }
  return snap;
}

std::string KpjEngine::MetricsJson() const {
  EngineMetricsSnapshot s = MetricsSnapshot();
  std::ostringstream out;
  out << "{\n"
      << "  \"workers\": " << num_workers() << ",\n"
      << "  \"queries_served\": " << s.queries_served << ",\n"
      << "  \"queries_failed\": " << s.queries_failed << ",\n"
      << "  \"deadline_exceeded\": " << s.deadline_exceeded << ",\n"
      << "  \"slow_queries\": " << s.slow_queries << ",\n"
      << "  \"paths_returned\": " << s.paths_returned << ",\n"
      << "  \"heap_pops\": " << s.heap_pops << ",\n"
      << "  \"edges_relaxed\": " << s.edges_relaxed << ",\n"
      << "  \"sp_computations\": " << s.sp_computations << ",\n"
      << "  \"algo_heap_pushes\": " << s.algo.heap_pushes << ",\n"
      << "  \"algo_heap_pops\": " << s.algo.heap_pops << ",\n"
      << "  \"algo_heap_decrease_keys\": " << s.algo.heap_decrease_keys
      << ",\n"
      << "  \"algo_node_expansions\": " << s.algo.node_expansions << ",\n"
      << "  \"algo_spt_resume_hits\": " << s.algo.spt_resume_hits << ",\n"
      << "  \"algo_spt_resume_misses\": " << s.algo.spt_resume_misses
      << ",\n"
      << "  \"algo_iter_bound_rounds\": " << s.algo.iter_bound_rounds
      << ",\n"
      << "  \"algo_candidates_generated\": " << s.algo.candidates_generated
      << ",\n"
      << "  \"algo_candidates_pruned\": " << s.algo.candidates_pruned
      << ",\n"
      << "  \"algo_lb_tightness\": "
      << FiniteOrZero(s.algo.LowerBoundTightness()) << ",\n"
      << "  \"algo_spt_cache_hits\": " << s.algo.spt_cache_hits << ",\n"
      << "  \"algo_spt_cache_misses\": " << s.algo.spt_cache_misses << ",\n"
      << "  \"algo_bound_cache_hits\": " << s.algo.bound_cache_hits << ",\n"
      << "  \"algo_bound_cache_misses\": " << s.algo.bound_cache_misses
      << ",\n"
      << "  \"algo_spt_cache_insert_skips\": "
      << s.algo.spt_cache_insert_skips << ",\n"
      << "  \"algo_intra_rounds\": " << s.algo.intra_rounds << ",\n"
      << "  \"algo_intra_tasks\": " << s.algo.intra_tasks << ",\n"
      << "  \"intra_steals\": " << s.intra_steals << ",\n"
      << "  \"intra_parallel_rounds\": " << s.intra_parallel_rounds << ",\n"
      << "  \"intra_fanout_count\": " << s.intra_fanout_count << ",\n"
      << "  \"intra_fanout_mean\": " << FiniteOrZero(s.intra_fanout_mean)
      << ",\n"
      << "  \"intra_fanout_max\": " << FiniteOrZero(s.intra_fanout_max)
      << ",\n";
  // Planner decision counters, one flat key per algorithm (display names
  // with '-' mapped to '_' so keys stay identifier-shaped), then the
  // aggregate and the GKPJ-fallback count.
  uint64_t planner_total = 0;
  for (size_t a = 0; a < kNumPlannableAlgorithms; ++a) {
    std::string name = AlgorithmName(kAllAlgorithms[a]);
    for (char& c : name) {
      if (c == '-') c = '_';
    }
    out << "  \"planner_choice_" << name << "\": "
        << s.planner_choice[PlannerIndex(kAllAlgorithms[a])] << ",\n";
    planner_total += s.planner_choice[PlannerIndex(kAllAlgorithms[a])];
  }
  out << "  \"planner_choice_total\": " << planner_total << ",\n"
      << "  \"planner_fallback_total\": " << s.planner_fallback << ",\n"
      << "  \"spt_cache_insertions\": " << s.spt_cache_insertions << ",\n"
      << "  \"spt_cache_evictions\": " << s.spt_cache_evictions << ",\n"
      << "  \"bound_cache_evictions\": " << s.bound_cache_evictions << ",\n"
      << "  \"cache_bytes\": " << s.cache_bytes << ",\n"
      << "  \"latency_count\": " << s.latency_count << ",\n"
      << "  \"latency_mean_ms\": " << FiniteOrZero(s.latency_mean_ms)
      << ",\n"
      << "  \"latency_min_ms\": " << FiniteOrZero(s.latency_min_ms) << ",\n"
      << "  \"latency_max_ms\": " << FiniteOrZero(s.latency_max_ms) << ",\n"
      << "  \"latency_p50_ms\": " << FiniteOrZero(s.latency_p50_ms) << ",\n"
      << "  \"latency_p90_ms\": " << FiniteOrZero(s.latency_p90_ms) << ",\n"
      << "  \"latency_p99_ms\": " << FiniteOrZero(s.latency_p99_ms) << "\n"
      << "}";
  return out.str();
}

std::string KpjEngine::MetricsPrometheus() const {
  EngineMetricsSnapshot s = MetricsSnapshot();
  std::ostringstream out;
  auto counter = [&out](const char* name, const char* help, uint64_t value) {
    out << "# HELP " << name << " " << help << "\n"
        << "# TYPE " << name << " counter\n"
        << name << " " << value << "\n";
  };
  auto gauge = [&out](const char* name, const char* help, double value) {
    out << "# HELP " << name << " " << help << "\n"
        << "# TYPE " << name << " gauge\n"
        << name << " " << FiniteOrZero(value) << "\n";
  };

  gauge("kpj_workers", "Engine worker threads.",
        static_cast<double>(num_workers()));
  counter("kpj_queries_served_total", "Queries answered completely.",
          s.queries_served);
  counter("kpj_queries_failed_total", "Queries rejected by validation.",
          s.queries_failed);
  counter("kpj_queries_deadline_exceeded_total",
          "Queries stopped by deadline or cancellation.",
          s.deadline_exceeded);
  counter("kpj_slow_queries_total",
          "Queries at or above the slow-query threshold.", s.slow_queries);
  counter("kpj_paths_returned_total", "Result paths across all queries.",
          s.paths_returned);
  counter("kpj_sp_computations_total",
          "Exact shortest-path computations (CompSP).", s.sp_computations);
  counter("kpj_heap_pushes_total", "Priority-queue inserts in all searches.",
          s.algo.heap_pushes);
  counter("kpj_heap_pops_total", "Priority-queue pops in all searches.",
          s.algo.heap_pops);
  counter("kpj_heap_decrease_keys_total",
          "Priority-queue decrease-key operations.",
          s.algo.heap_decrease_keys);
  counter("kpj_node_expansions_total", "Nodes settled across all searches.",
          s.algo.node_expansions);
  counter("kpj_edges_relaxed_total", "Edges relaxed across all searches.",
          s.edges_relaxed);
  counter("kpj_spt_resume_hits_total",
          "SPT_I growth calls answered from the existing tree.",
          s.algo.spt_resume_hits);
  counter("kpj_spt_resume_misses_total",
          "SPT_I growth calls that settled new nodes.",
          s.algo.spt_resume_misses);
  counter("kpj_iter_bound_rounds_total",
          "Subspace re-tests after enlarging tau.", s.algo.iter_bound_rounds);
  counter("kpj_candidates_generated_total",
          "Candidate paths pushed into result queues.",
          s.algo.candidates_generated);
  counter("kpj_candidates_pruned_total",
          "Subspaces discarded without yielding a path.",
          s.algo.candidates_pruned);
  gauge("kpj_lower_bound_tightness_ratio",
        "Mean CompLB / exact-length ratio (1.0 = exact).",
        s.algo.LowerBoundTightness());
  // Raw tightness terms, labeled by the solver this engine runs: their
  // quotient is the ratio above, but as monotone counters they survive
  // scraping/rate() and make per-algorithm oracle comparisons (ALT vs hub
  // labels) directly observable.
  {
    const char* algo_name = AlgorithmName(options_.solver.algorithm);
    auto labeled_counter = [&out, algo_name](const char* name,
                                             const char* help,
                                             uint64_t value) {
      out << "# HELP " << name << " " << help << "\n"
          << "# TYPE " << name << " counter\n"
          << name << "{algorithm=\"" << algo_name << "\"} " << value << "\n";
    };
    labeled_counter("kpj_lb_tightness_num_total",
                    "Sum of popped lower bounds at exact-path pops.",
                    s.algo.lb_tightness_num);
    labeled_counter("kpj_lb_tightness_den_total",
                    "Sum of exact path lengths at exact-path pops.",
                    s.algo.lb_tightness_den);
  }
  counter("kpj_spt_cache_hits_total",
          "Queries that adopted cached SPT/root-path state.",
          s.algo.spt_cache_hits);
  counter("kpj_spt_cache_misses_total",
          "SPT cache lookups that had to recompute.",
          s.algo.spt_cache_misses);
  counter("kpj_bound_cache_hits_total",
          "Landmark set aggregates served from cache.",
          s.algo.bound_cache_hits);
  counter("kpj_bound_cache_misses_total",
          "Landmark set aggregates computed afresh.",
          s.algo.bound_cache_misses);
  counter("kpj_spt_cache_insert_skips_total",
          "SPT cache insertions skipped (negative measured hit benefit).",
          s.algo.spt_cache_insert_skips);
  // Adaptive-planner decision counters, labeled by the chosen algorithm.
  out << "# HELP kpj_planner_choice_total Planner decisions by chosen "
         "algorithm (--algorithm=auto).\n"
      << "# TYPE kpj_planner_choice_total counter\n";
  for (Algorithm a : kAllAlgorithms) {
    out << "kpj_planner_choice_total{algorithm=\"" << AlgorithmName(a)
        << "\"} " << s.planner_choice[PlannerIndex(a)] << "\n";
  }
  counter("kpj_planner_fallback_total",
          "Planner decisions the cache probes could not help (GKPJ).",
          s.planner_fallback);
  counter("kpj_spt_cache_evictions_total",
          "SPT cache entries evicted (LRU or epoch purge).",
          s.spt_cache_evictions);
  counter("kpj_bound_cache_evictions_total",
          "Bound cache entries evicted (LRU or epoch purge).",
          s.bound_cache_evictions);
  gauge("kpj_cache_bytes", "Resident bytes across both reuse caches.",
        static_cast<double>(s.cache_bytes));
  counter("kpj_intra_rounds_total",
          "Deviation rounds executed (all execution modes).",
          s.algo.intra_rounds);
  counter("kpj_intra_tasks_total",
          "Deviation tasks (candidate slots) executed.", s.algo.intra_tasks);
  counter("kpj_intra_steals_total",
          "Deviation tasks executed by helper lanes.", s.intra_steals);
  counter("kpj_intra_parallel_rounds_total",
          "Deviation rounds that fanned out across the pool.",
          s.intra_parallel_rounds);

  // Histograms with Prometheus cumulative buckets.
  auto histogram = [&out](const char* name, const char* help,
                          const LatencyHistogram& h) {
    out << "# HELP " << name << " " << help << "\n"
        << "# TYPE " << name << " histogram\n";
    uint64_t cumulative = 0;
    for (size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
      cumulative += h.bucket_count(b);
      double ub = LatencyHistogram::BucketUpperBoundMs(b);
      out << name << "_bucket{le=\"";
      if (std::isinf(ub)) {
        out << "+Inf";
      } else {
        out << ub;
      }
      out << "\"} " << cumulative << "\n";
    }
    out << name << "_sum " << FiniteOrZero(h.sum_ms()) << "\n"
        << name << "_count " << h.count() << "\n";
  };
  histogram("kpj_query_latency_ms", "Per-query wall time in milliseconds.",
            metrics_.latency);
  histogram("kpj_intra_fanout",
            "Slots per fanned-out deviation round (dimensionless).",
            metrics_.intra_fanout);
  return out.str();
}

void KpjEngine::ResetMetrics() {
  metrics_.queries_served.Reset();
  metrics_.queries_failed.Reset();
  metrics_.deadline_exceeded.Reset();
  metrics_.paths_returned.Reset();
  metrics_.heap_pops.Reset();
  metrics_.edges_relaxed.Reset();
  metrics_.sp_computations.Reset();
  metrics_.slow_queries.Reset();
  metrics_.latency.Reset();
  metrics_.algo.Reset();
  metrics_.intra_steals.Reset();
  metrics_.intra_parallel_rounds.Reset();
  metrics_.intra_fanout.Reset();
  for (Counter& c : metrics_.planner_choice) c.Reset();
  metrics_.planner_fallback.Reset();
  if (spt_cache_ != nullptr) {
    spt_cache_->ResetStats();
    bound_cache_->ResetStats();
  }
}

}  // namespace kpj
