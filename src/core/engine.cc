#include "core/engine.h"

#include <sstream>
#include <thread>
#include <utility>

#include "util/cancellation.h"
#include "util/timer.h"

namespace kpj {

unsigned KpjEngine::ResolveThreads(const KpjEngineOptions& options) {
  unsigned threads = options.threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 2;
  } else if (options.clamp_to_hardware) {
    threads = ThreadPool::ClampToHardware(threads);
  }
  return threads;
}

KpjEngine::KpjEngine(const KpjInstance& instance, KpjEngineOptions options)
    : instance_(instance),
      options_(std::move(options)),
      pool_(ResolveThreads(options_)) {
  // Eagerly build one solver per worker so the first queries do not pay
  // the O(n) workspace allocations, and so construction fails fast if the
  // options are unusable.
  solvers_.reserve(pool_.num_workers());
  for (unsigned w = 0; w < pool_.num_workers(); ++w) {
    solvers_.push_back(MakeSolver(instance_, options_.solver));
  }
}

Result<KpjResult> KpjEngine::RunOne(const KpjQuery& query, double deadline_ms,
                                    unsigned worker) {
  CancellationToken token;
  const CancellationToken* cancel = nullptr;
  if (deadline_ms > 0.0) {
    token.SetDeadlineAfterMs(deadline_ms);
    cancel = &token;
  }

  Timer timer;
  Result<KpjResult> result = RunKpjOnInstance(
      instance_, query, options_.solver, solvers_[worker].get(), cancel);
  metrics_.latency.Record(timer.ElapsedMillis());

  if (!result.ok()) {
    metrics_.queries_failed.Increment();
    return result;
  }
  const KpjResult& r = result.value();
  if (r.status.ok()) {
    metrics_.queries_served.Increment();
  } else {
    metrics_.deadline_exceeded.Increment();
  }
  metrics_.paths_returned.Add(r.paths.size());
  metrics_.heap_pops.Add(r.stats.nodes_settled);
  metrics_.edges_relaxed.Add(r.stats.edges_relaxed);
  metrics_.sp_computations.Add(r.stats.shortest_path_computations);
  return result;
}

std::future<Result<KpjResult>> KpjEngine::Submit(KpjQuery query) {
  return Submit(std::move(query), options_.default_deadline_ms);
}

std::future<Result<KpjResult>> KpjEngine::Submit(KpjQuery query,
                                                 double deadline_ms) {
  // ThreadPool::Task is a std::function (copyable), so the per-task state
  // lives behind a shared_ptr.
  struct PendingQuery {
    KpjQuery query;
    std::promise<Result<KpjResult>> promise;
  };
  auto pending = std::make_shared<PendingQuery>();
  pending->query = std::move(query);
  std::future<Result<KpjResult>> future = pending->promise.get_future();
  pool_.Submit([this, pending, deadline_ms](unsigned worker) {
    pending->promise.set_value(
        RunOne(pending->query, deadline_ms, worker));
  });
  return future;
}

std::vector<Result<KpjResult>> KpjEngine::RunBatch(
    std::span<const KpjQuery> queries) {
  return RunBatch(queries, options_.default_deadline_ms);
}

std::vector<Result<KpjResult>> KpjEngine::RunBatch(
    std::span<const KpjQuery> queries, double deadline_ms) {
  // Result<T> has no default constructor; prefill with a placeholder that
  // every executed index overwrites.
  std::vector<Result<KpjResult>> results;
  results.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    results.emplace_back(Status::FailedPrecondition("query not executed"));
  }
  pool_.ParallelFor(queries.size(), [&](size_t i, unsigned worker) {
    results[i] = RunOne(queries[i], deadline_ms, worker);
  });
  return results;
}

EngineMetricsSnapshot KpjEngine::MetricsSnapshot() const {
  EngineMetricsSnapshot snap;
  snap.queries_served = metrics_.queries_served.value();
  snap.queries_failed = metrics_.queries_failed.value();
  snap.deadline_exceeded = metrics_.deadline_exceeded.value();
  snap.paths_returned = metrics_.paths_returned.value();
  snap.heap_pops = metrics_.heap_pops.value();
  snap.edges_relaxed = metrics_.edges_relaxed.value();
  snap.sp_computations = metrics_.sp_computations.value();
  snap.latency_count = metrics_.latency.count();
  snap.latency_mean_ms = metrics_.latency.Mean();
  snap.latency_min_ms = metrics_.latency.min_ms();
  snap.latency_max_ms = metrics_.latency.max_ms();
  snap.latency_p50_ms = metrics_.latency.Percentile(50.0);
  snap.latency_p90_ms = metrics_.latency.Percentile(90.0);
  snap.latency_p99_ms = metrics_.latency.Percentile(99.0);
  return snap;
}

std::string KpjEngine::MetricsJson() const {
  EngineMetricsSnapshot s = MetricsSnapshot();
  std::ostringstream out;
  out << "{\n"
      << "  \"workers\": " << num_workers() << ",\n"
      << "  \"queries_served\": " << s.queries_served << ",\n"
      << "  \"queries_failed\": " << s.queries_failed << ",\n"
      << "  \"deadline_exceeded\": " << s.deadline_exceeded << ",\n"
      << "  \"paths_returned\": " << s.paths_returned << ",\n"
      << "  \"heap_pops\": " << s.heap_pops << ",\n"
      << "  \"edges_relaxed\": " << s.edges_relaxed << ",\n"
      << "  \"sp_computations\": " << s.sp_computations << ",\n"
      << "  \"latency_count\": " << s.latency_count << ",\n"
      << "  \"latency_mean_ms\": " << s.latency_mean_ms << ",\n"
      << "  \"latency_min_ms\": " << s.latency_min_ms << ",\n"
      << "  \"latency_max_ms\": " << s.latency_max_ms << ",\n"
      << "  \"latency_p50_ms\": " << s.latency_p50_ms << ",\n"
      << "  \"latency_p90_ms\": " << s.latency_p90_ms << ",\n"
      << "  \"latency_p99_ms\": " << s.latency_p99_ms << "\n"
      << "}";
  return out.str();
}

void KpjEngine::ResetMetrics() {
  metrics_.queries_served.Reset();
  metrics_.queries_failed.Reset();
  metrics_.deadline_exceeded.Reset();
  metrics_.paths_returned.Reset();
  metrics_.heap_pops.Reset();
  metrics_.edges_relaxed.Reset();
  metrics_.sp_computations.Reset();
  metrics_.latency.Reset();
}

}  // namespace kpj
