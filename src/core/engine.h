#ifndef KPJ_CORE_ENGINE_H_
#define KPJ_CORE_ENGINE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/instrumentation.h"
#include "core/intra.h"
#include "core/kpj_instance.h"
#include "core/kpj_query.h"
#include "core/planner.h"
#include "core/solver.h"
#include "core/spt_cache.h"
#include "index/target_bound.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace kpj {

/// Engine configuration, fixed at construction.
struct KpjEngineOptions {
  /// Worker threads. 0 picks the hardware concurrency.
  unsigned threads = 0;
  /// Apply the advisory hardware clamp to an explicit `threads` request.
  /// Turn off to deliberately oversubscribe (determinism and sanitizer
  /// tests run N workers on fewer cores; correctness is unaffected).
  bool clamp_to_hardware = true;
  /// Deadline applied to every query that does not carry its own, in
  /// milliseconds. 0 disables (queries run to completion).
  double default_deadline_ms = 0.0;
  /// Solver selection and knobs. `solver.oracle` may be left null: the
  /// instance's selected distance oracle is used (ResolveOptions).
  KpjOptions solver;
  /// Slow-query log threshold in milliseconds; queries at or above it are
  /// reported through KPJ_LOG(Warning) with their query id (and, when a
  /// deadline applies, the fraction of it consumed). Deadline-exceeded
  /// queries are always logged while the threshold is active. 0 disables.
  double slow_query_ms = 0.0;
  /// Cross-query reuse cache budget in MiB, split between the SPT cache
  /// (3/4) and the category-bound cache (1/4); see DESIGN.md "Cross-query
  /// reuse". 0 (the default) disables caching entirely. Results are
  /// byte-identical either way, at any worker count — the caches only
  /// shortcut recomputation of state a cold run reaches at the same
  /// program point. The CLI defaults this to 64 (--cache-mb/--no-cache).
  size_t cache_mb = 0;
  /// Intra-query parallelism: lanes (including the owning worker) each
  /// query's deviation rounds may fan out across the pool. 1 (the
  /// default) runs rounds inline — full backward compatibility. 0 is the
  /// auto-split policy: each query gets num_workers / in-flight-queries
  /// lanes, so a lone expensive query uses the whole pool while a full
  /// batch degrades to per-query parallelism only. Explicit values are
  /// clamped by `clamp_to_hardware`. Results are byte-identical at every
  /// setting (DESIGN.md "Intra-query parallelism").
  unsigned intra_threads = 1;
  /// Adaptive-planner knobs (core/planner.h), consulted only when
  /// `solver.algorithm == Algorithm::kAuto` or a query carries an `auto`
  /// override. The planner only changes which solver produces the
  /// byte-identical answer, never the answer.
  PlannerOptions planner;
};

/// Per-query service context threaded down from the server layer. The
/// trace id tags every span the query records (TraceContext), stitching
/// engine/solver spans into the request's wire-level timeline; queue_ms is
/// the admission wait, reported by the slow-query log so slow-log lines
/// join access-log lines on the same trace id. All-defaults (the common
/// in-process case) means "no trace, no queue".
struct QueryContext {
  uint64_t trace_id = 0;
  double queue_ms = 0.0;
  /// Per-query algorithm override (additive wire field `algorithm`):
  /// nullopt runs the engine's configured algorithm; a concrete value
  /// forces that solver for this query only; Algorithm::kAuto engages the
  /// planner for this query even on a fixed-algorithm engine.
  std::optional<Algorithm> algorithm;
};

/// Point-in-time copy of the engine's execution metrics. Counts are sums
/// over all workers since construction (or the last ResetMetrics).
struct EngineMetricsSnapshot {
  uint64_t queries_served = 0;      ///< Completed OK with a full answer.
  uint64_t queries_failed = 0;      ///< Rejected (validation) queries.
  uint64_t deadline_exceeded = 0;   ///< Stopped by deadline/cancellation.
  uint64_t paths_returned = 0;      ///< Paths across all results.
  uint64_t heap_pops = 0;           ///< Nodes settled across all searches.
  uint64_t edges_relaxed = 0;
  uint64_t sp_computations = 0;     ///< Exact shortest-path computations.
  uint64_t slow_queries = 0;        ///< Queries past the slow-query bar.
  uint64_t latency_count = 0;       ///< Queries with a recorded latency.
  double latency_mean_ms = 0.0;
  double latency_min_ms = 0.0;
  double latency_max_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p90_ms = 0.0;
  double latency_p99_ms = 0.0;
  /// Aggregated per-query algorithm counters (exact integer sums; identical
  /// for the same workload at any worker count).
  AlgoStats algo;
  /// Cross-query cache object counters (all zero when caching is off).
  /// Hit/miss counts live in `algo` (they are per-query solver events).
  uint64_t spt_cache_insertions = 0;
  uint64_t spt_cache_evictions = 0;
  uint64_t bound_cache_evictions = 0;
  uint64_t cache_bytes = 0;  ///< Current resident bytes across both caches.
  /// Intra-query parallelism scheduling facts (all zero at
  /// intra_threads <= 1). Deliberately *not* in `algo`: steals and
  /// fan-out depend on worker timing, while AlgoStats must be identical
  /// at any thread count. The deterministic round structure is in
  /// `algo.intra_rounds` / `algo.intra_tasks`.
  uint64_t intra_steals = 0;           ///< Slots executed by helper lanes.
  uint64_t intra_parallel_rounds = 0;  ///< Rounds that actually fanned out.
  uint64_t intra_fanout_count = 0;     ///< Fanned-out rounds recorded.
  double intra_fanout_mean = 0.0;      ///< Mean slots per fanned-out round.
  double intra_fanout_max = 0.0;       ///< Largest fanned-out round.
  /// Adaptive-planner decisions per chosen algorithm (indexed by
  /// PlannerIndex; all zero when no query engaged the planner) and the
  /// fallback count (GKPJ queries the cache probes cannot help).
  std::array<uint64_t, kNumPlannableAlgorithms> planner_choice{};
  uint64_t planner_fallback = 0;
};

/// Concurrent KPJ query engine over one immutable KpjInstance.
///
/// Owns a fixed ThreadPool and one KpjSolver per worker, so every query
/// reuses a warm per-worker workspace (epoch-reset arrays, heaps) without
/// any locking — a worker only ever touches its own solver. Queries are
/// submitted one-shot (Submit -> future) or as an order-preserving batch
/// (RunBatch), optionally bounded by a per-query deadline enforced through
/// the cooperative CancellationToken threaded into the solver loops.
///
/// Results are deterministic: a query's answer does not depend on the
/// number of workers or on what else is in flight, because solvers share
/// nothing but the read-only instance.
///
/// The instance must outlive the engine and must not be moved while the
/// engine exists (solvers keep references into it).
class KpjEngine {
 public:
  explicit KpjEngine(const KpjInstance& instance,
                     KpjEngineOptions options = {});

  /// Destruction waits for in-flight and queued queries to finish.
  ~KpjEngine() = default;

  KpjEngine(const KpjEngine&) = delete;
  KpjEngine& operator=(const KpjEngine&) = delete;

  unsigned num_workers() const { return pool_.num_workers(); }
  const KpjInstance& instance() const { return instance_; }
  const KpjEngineOptions& options() const { return options_; }

  /// The adaptive planner behind `--algorithm=auto`. Always constructed
  /// (per-query overrides can engage it on a fixed-algorithm engine) but
  /// consulted only for queries whose effective algorithm is kAuto —
  /// fixed-algorithm queries bypass it entirely. Exposed mutable so tests
  /// can pin a profile snapshot (QueryPlanner::PinProfile) and benches
  /// can read the rolling profile.
  QueryPlanner& planner() { return *planner_; }
  const QueryPlanner& planner() const { return *planner_; }

  /// Enqueues one query (original ids) and returns a future for its
  /// result. Uses the engine's default deadline.
  std::future<Result<KpjResult>> Submit(KpjQuery query);

  /// Enqueues one query with an explicit deadline in milliseconds
  /// (0 = run to completion, overriding the engine default).
  std::future<Result<KpjResult>> Submit(KpjQuery query, double deadline_ms);

  /// Submit with a service context (trace id + queue wait); see
  /// QueryContext.
  std::future<Result<KpjResult>> Submit(KpjQuery query, double deadline_ms,
                                        QueryContext context);

  /// Runs every query in `queries` across the pool and returns results in
  /// input order. Uses the engine's default deadline. Blocks the caller;
  /// concurrent Submit calls interleave safely on the same pool.
  std::vector<Result<KpjResult>> RunBatch(std::span<const KpjQuery> queries);

  /// RunBatch with an explicit per-query deadline (0 = no deadline).
  std::vector<Result<KpjResult>> RunBatch(std::span<const KpjQuery> queries,
                                          double deadline_ms);

  /// RunBatch with a service context shared by every entry.
  std::vector<Result<KpjResult>> RunBatch(std::span<const KpjQuery> queries,
                                          double deadline_ms,
                                          QueryContext context);

  EngineMetricsSnapshot MetricsSnapshot() const;

  /// Metrics as a JSON object (stable keys; for --metrics-json and
  /// dashboards).
  std::string MetricsJson() const;

  /// Metrics in Prometheus text exposition format (`# HELP`/`# TYPE`
  /// comments, `kpj_`-prefixed counters, and the latency histogram with
  /// cumulative `le` buckets).
  std::string MetricsPrometheus() const;

  void ResetMetrics();

 private:
  /// Executes one query on `worker`'s pooled solver, recording metrics.
  /// `query_id` is a per-engine sequence number used by the trace span and
  /// the slow-query log.
  Result<KpjResult> RunOne(const KpjQuery& query, double deadline_ms,
                           unsigned worker, uint64_t query_id,
                           const QueryContext& context);

  static unsigned ResolveThreads(const KpjEngineOptions& options);

  /// Returns worker `worker`'s pooled solver for `algorithm`, building it
  /// on first use. Each worker only ever touches its own row of the grid,
  /// so no synchronization is needed.
  KpjSolver* SolverFor(unsigned worker, Algorithm algorithm);

  const KpjInstance& instance_;
  const KpjEngineOptions options_;
  ThreadPool pool_;
  /// Per-worker solver grid, indexed [worker][PlannerIndex(algorithm)].
  /// Fixed-algorithm engines eagerly build one column (fail-fast, warm
  /// first query); the planner's other choices fill in lazily on first
  /// use. Workers use only their own row, so no synchronization is
  /// needed.
  std::vector<
      std::array<std::unique_ptr<KpjSolver>, kNumPlannableAlgorithms>>
      solvers_;
  /// The adaptive planner (see planner()); never null.
  std::unique_ptr<QueryPlanner> planner_;
  /// Cross-query reuse caches, shared by all workers (both are internally
  /// synchronized). Null when options_.cache_mb == 0.
  std::unique_ptr<SptCache> spt_cache_;
  std::unique_ptr<TargetBoundCache> bound_cache_;
  /// Last instance epoch a worker observed; on a change the stale entries
  /// are purged eagerly (lookups could never hit them anyway — the epoch
  /// is part of every cache key).
  std::atomic<uint64_t> purged_epoch_{0};

  struct Metrics {
    Counter queries_served;
    Counter queries_failed;
    Counter deadline_exceeded;
    Counter paths_returned;
    Counter heap_pops;
    Counter edges_relaxed;
    Counter sp_computations;
    Counter slow_queries;
    LatencyHistogram latency;
    AtomicAlgoStats algo;
    /// Intra-query scheduling facts; see EngineMetricsSnapshot.
    Counter intra_steals;
    Counter intra_parallel_rounds;
    /// Per-round fan-out distribution (values are slot counts; the
    /// geometric ms buckets resolve the interesting 1..100 range well).
    LatencyHistogram intra_fanout;
    /// Planner decisions by chosen algorithm, plus GKPJ fallbacks.
    std::array<Counter, kNumPlannableAlgorithms> planner_choice;
    Counter planner_fallback;
  };
  Metrics metrics_;
  /// Monotonic query-id source shared by Submit and RunBatch.
  std::atomic<uint64_t> next_query_id_{0};
  /// Queries currently inside RunOne; drives the intra_threads == 0
  /// auto-split policy (workers / active queries).
  std::atomic<unsigned> active_queries_{0};
};

}  // namespace kpj

#endif  // KPJ_CORE_ENGINE_H_
