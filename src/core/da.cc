#include "core/da.h"

#include <utility>

namespace kpj {

DaSolver::DaSolver(const Graph& graph, const Graph& reverse,
                   const KpjOptions& options)
    : graph_(graph), search_(graph) {
  (void)reverse;   // DA needs no reverse graph.
  (void)options;   // ... and no landmarks / alpha.
}

bool DaSolver::ComputeCandidate(uint32_t v, ConstrainedSearch& cs,
                                SubspaceEntry* entry, QueryStats* stats) {
  const PseudoTree::Vertex& vx = tree_.vertex(v);
  cs.ClearForbidden();
  tree_.MarkPrefix(v, &cs.forbidden());

  SubspaceSearchRequest request;
  request.start = vx.node;
  request.prefix_length = vx.prefix_length;
  request.banned_first_hops = vx.banned;
  request.start_counts_as_destination =
      !vx.finish_banned && cs.target_set().Contains(vx.node);
  request.cancel = cancel_;

  ++stats->shortest_path_computations;
  ++stats->subspaces_created;
  SubspaceSearchResult result = cs.Run(request, zero_, stats);
  if (result.outcome != SearchOutcome::kFound) {
    ++stats->algo.candidates_pruned;
    return false;
  }

  ++stats->algo.candidates_generated;
  entry->vertex = v;
  entry->has_path = true;
  entry->suffix_length = result.suffix_length;
  entry->key = static_cast<double>(vx.prefix_length + result.suffix_length);
  // Entries store nodes strictly after the vertex's node.
  entry->suffix.assign(result.suffix.begin() + 1, result.suffix.end());
  return true;
}

void DaSolver::PushCandidate(uint32_t v, SubspaceQueue& queue,
                             QueryStats* stats) {
  SubspaceEntry entry;
  if (ComputeCandidate(v, search_, &entry, stats)) {
    queue.Push(std::move(entry));
  }
}

void DaSolver::ExpandDivision(const DivisionResult& division,
                              SubspaceQueue& queue, QueryStats* stats) {
  // Canonical slot order — revised vertex, then created vertices in
  // creation order — matches sequential execution exactly; everything
  // below preserves it regardless of which lane computes which slot.
  std::vector<uint32_t> slots;
  slots.reserve(1 + division.created.size());
  slots.push_back(division.revised);
  slots.insert(slots.end(), division.created.begin(),
               division.created.end());

  struct Slot {
    SubspaceEntry entry;
    QueryStats stats;
    bool found = false;
  };
  std::vector<Slot> results(slots.size());
  RunDeviationRound(
      intra_, slots.size(), &stats->algo, [&](size_t i, unsigned lane) {
        ConstrainedSearch& cs =
            lane == 0 ? search_ : *lane_search_[lane - 1];
        results[i].found =
            ComputeCandidate(slots[i], cs, &results[i].entry,
                             &results[i].stats);
      });
  for (Slot& r : results) {
    stats->Accumulate(r.stats);
    if (r.found) queue.Push(std::move(r.entry));
  }
}

KpjResult DaSolver::Run(const PreparedQuery& query) {
  KpjResult res;
  cancel_ = query.cancel;
  intra_ = query.intra;
  tree_.Reset(query.source);
  search_.SetTargets(query.targets);
  // Provision one extra search workspace per helper lane up front: lanes
  // must never allocate into shared vectors mid-round. Each workspace is a
  // pure function of (graph, targets), so every lane computes candidates
  // byte-identical to the main workspace.
  for (unsigned lane = 1; lane < IntraLanes(intra_); ++lane) {
    if (lane_search_.size() < lane) {
      lane_search_.push_back(std::make_unique<ConstrainedSearch>(graph_));
    }
    lane_search_[lane - 1]->SetTargets(query.targets);
  }

  SubspaceQueue queue;
  PushCandidate(tree_.root(), queue, &res.stats);
  // The root "candidate" is the true shortest path, not a division
  // by-product; it is not one of the O(k n) candidates of Alg. 1.
  res.stats.subspaces_created = 0;

  while (res.paths.size() < query.k && !queue.empty()) {
    if (cancel_ != nullptr && cancel_->ShouldStop()) break;
    res.stats.max_queue_size =
        std::max<uint64_t>(res.stats.max_queue_size, queue.size());
    SubspaceEntry entry = queue.Pop();
    res.paths.push_back(AssemblePath(tree_, entry, /*reverse_oriented=*/false));

    if (res.paths.size() == query.k) break;
    DivisionResult division = DivideSubspace(
        tree_, graph_, entry.vertex, entry.suffix,
        /*create_destination_vertex=*/true);
    ExpandDivision(division, queue, &res.stats);
  }
  if (cancel_ != nullptr && cancel_->ShouldStop() &&
      res.paths.size() < query.k) {
    res.status = cancel_->CancelStatus();
  }
  return res;
}

}  // namespace kpj
