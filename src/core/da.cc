#include "core/da.h"

#include <utility>

namespace kpj {

DaSolver::DaSolver(const Graph& graph, const Graph& reverse,
                   const KpjOptions& options)
    : graph_(graph), search_(graph) {
  (void)reverse;   // DA needs no reverse graph.
  (void)options;   // ... and no landmarks / alpha.
}

void DaSolver::PushCandidate(uint32_t v, SubspaceQueue& queue,
                             QueryStats* stats) {
  const PseudoTree::Vertex& vx = tree_.vertex(v);
  search_.ClearForbidden();
  tree_.MarkPrefix(v, &search_.forbidden());

  SubspaceSearchRequest request;
  request.start = vx.node;
  request.prefix_length = vx.prefix_length;
  request.banned_first_hops = vx.banned;
  request.start_counts_as_destination =
      !vx.finish_banned && search_.target_set().Contains(vx.node);
  request.cancel = cancel_;

  ++stats->shortest_path_computations;
  ++stats->subspaces_created;
  SubspaceSearchResult result = search_.Run(request, zero_, stats);
  if (result.outcome != SearchOutcome::kFound) {
    ++stats->algo.candidates_pruned;
    return;
  }

  ++stats->algo.candidates_generated;
  SubspaceEntry entry;
  entry.vertex = v;
  entry.has_path = true;
  entry.suffix_length = result.suffix_length;
  entry.key = static_cast<double>(vx.prefix_length + result.suffix_length);
  // Entries store nodes strictly after the vertex's node.
  entry.suffix.assign(result.suffix.begin() + 1, result.suffix.end());
  queue.Push(std::move(entry));
}

KpjResult DaSolver::Run(const PreparedQuery& query) {
  KpjResult res;
  cancel_ = query.cancel;
  tree_.Reset(query.source);
  search_.SetTargets(query.targets);

  SubspaceQueue queue;
  PushCandidate(tree_.root(), queue, &res.stats);
  // The root "candidate" is the true shortest path, not a division
  // by-product; it is not one of the O(k n) candidates of Alg. 1.
  res.stats.subspaces_created = 0;

  while (res.paths.size() < query.k && !queue.empty()) {
    if (cancel_ != nullptr && cancel_->ShouldStop()) break;
    res.stats.max_queue_size =
        std::max<uint64_t>(res.stats.max_queue_size, queue.size());
    SubspaceEntry entry = queue.Pop();
    res.paths.push_back(AssemblePath(tree_, entry, /*reverse_oriented=*/false));

    if (res.paths.size() == query.k) break;
    DivisionResult division = DivideSubspace(
        tree_, graph_, entry.vertex, entry.suffix,
        /*create_destination_vertex=*/true);
    PushCandidate(division.revised, queue, &res.stats);
    for (uint32_t v : division.created) PushCandidate(v, queue, &res.stats);
  }
  if (cancel_ != nullptr && cancel_->ShouldStop() &&
      res.paths.size() < query.k) {
    res.status = cancel_->CancelStatus();
  }
  return res;
}

}  // namespace kpj
