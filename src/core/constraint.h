#ifndef KPJ_CORE_CONSTRAINT_H_
#define KPJ_CORE_CONSTRAINT_H_

#include <limits>
#include <span>
#include <vector>

#include "core/kpj_query.h"
#include "graph/graph.h"
#include "sssp/astar.h"
#include "sssp/incremental_search.h"
#include "util/arena.h"
#include "util/epoch_array.h"
#include "util/indexed_heap.h"
#include "util/types.h"

namespace kpj {

/// One subspace-constrained shortest-path problem: find the shortest path
/// in ⟨P_{s,u}, X_u⟩ from u to the destination set, optionally bounded by
/// a threshold τ (TestLB, Alg. 5) and/or restricted to an SPT_I
/// (TestLB-SPT_I, §5.3).
struct SubspaceSearchRequest {
  /// Search start (the subspace's deviation node u). kInvalidNode means
  /// the subspace is rooted at a virtual node (the reverse orientation's
  /// virtual destination t): the search is then seeded from `seeds`
  /// (its real neighbours via 0-weight virtual edges) instead.
  NodeId start = kInvalidNode;
  /// Seed nodes used when `start` is virtual; banned_first_hops applies to
  /// these (a banned seed is excluded).
  std::span<const NodeId> seeds;
  /// True when `seeds` is known to be a *subset* of the virtual root's
  /// true neighbours (the SPT_I search has only settled part of V_T, and
  /// every missing one lies beyond τ). Forces a kBounded instead of a
  /// kEmpty verdict so the subspace is retested at a larger τ.
  bool seeds_incomplete = false;
  /// Length of the subspace's prefix path ω(P_{s,u}); all τ comparisons
  /// are against prefix + suffix + heuristic (Alg. 5 line 2 initializes
  /// ds(u) to the prefix length).
  PathLength prefix_length = 0;
  /// Banned first hops out of `start` (the subspace's X_u).
  std::span<const NodeId> banned_first_hops;
  /// If true, the start itself is a valid destination reached by the empty
  /// suffix (start is a target node and finishing there is not banned —
  /// the virtual edge (u, t) of the paper's reduction is intact).
  bool start_counts_as_destination = false;
  /// TestLB threshold τ; +infinity turns the test into plain CompSP.
  double tau = std::numeric_limits<double>::infinity();
  /// Only visit nodes already settled by this incremental search (the
  /// SPT_I restriction); nullptr disables.
  const IncrementalSearch* restrict_to = nullptr;
  /// Cooperative cancellation; polled once per heap pop. A cancelled
  /// search bails out with kBounded (no claim about the subspace) — the
  /// caller must re-check the token before trusting the outcome.
  const CancellationToken* cancel = nullptr;
};

/// What a subspace search learned (Alg. 5's three-way contract, extended
/// with the empty case needed for termination when a subspace contains no
/// path at all).
enum class SearchOutcome {
  /// Shortest path found; its total length is <= τ.
  kFound,
  /// Every path in the subspace is provably longer than τ.
  kBounded,
  /// The subspace contains no path at any τ; it can be discarded.
  kEmpty,
};

struct SubspaceSearchResult {
  SearchOutcome outcome = SearchOutcome::kEmpty;
  /// For kFound: nodes from `start` to the destination, inclusive. Backed
  /// by the ConstrainedSearch's arena — valid only until that engine's
  /// next Run call; callers copy what they keep.
  std::span<const NodeId> suffix;
  /// For kFound: total weight of the suffix edges (excludes the prefix).
  PathLength suffix_length = 0;
};

/// Reusable engine for subspace-constrained (possibly bounded) A*.
///
/// Owns the per-search workspace — distance labels, parents, settled set,
/// heap, and the `forbidden` prefix-node set — all epoch-reset, so a query
/// issuing thousands of subspace searches pays O(touched) per search.
///
/// The engine is orientation-agnostic: forward-searching algorithms bind
/// it to the forward graph with the destination category as target set;
/// the reverse-oriented IterBound-SPT_I binds it to the reverse graph with
/// the (virtual) source as the single target.
class ConstrainedSearch {
 public:
  explicit ConstrainedSearch(const Graph& graph);

  /// Declares the destination set for subsequent Run calls. Kept across
  /// runs; typical use sets it once per query.
  void SetTargets(std::span<const NodeId> targets);

  /// Clears the forbidden set; callers then mark the subspace prefix via
  /// PseudoTree::MarkPrefix(&forbidden()).
  void ClearForbidden() { forbidden_.ClearAll(); }
  EpochSet& forbidden() { return forbidden_; }

  /// Runs one subspace search with heuristic `h` (a lower bound on the
  /// remaining distance to the destination set). Work counters are added
  /// to `stats`.
  SubspaceSearchResult Run(const SubspaceSearchRequest& request,
                           const Heuristic& h, QueryStats* stats);

  const Graph& graph() const { return graph_; }
  const EpochSet& target_set() const { return targets_; }

 private:
  const Graph& graph_;
  EpochSet targets_;
  EpochSet forbidden_;
  EpochArray<PathLength> dist_;
  EpochArray<NodeId> parent_;
  IndexedHeap<PathLength> heap_;
  /// Backs the suffix of the most recent result; recycled every Run.
  Arena suffix_arena_;
};

}  // namespace kpj

#endif  // KPJ_CORE_CONSTRAINT_H_
