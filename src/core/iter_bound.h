#ifndef KPJ_CORE_ITER_BOUND_H_
#define KPJ_CORE_ITER_BOUND_H_

#include "core/best_first.h"

namespace kpj {

/// IterBound (paper Alg. 4 + Alg. 5): the best-first paradigm with
/// iteratively "guessed" and tightened lower bounds.
///
/// Instead of computing a subspace's exact shortest path the first time
/// its bound entry is popped, it runs TestLB with threshold
/// τ = α · max(lb(S), Q.top().key): if every path in the subspace exceeds
/// τ the subspace is re-queued with the tightened bound τ; only subspaces
/// whose shortest path actually falls below the growing threshold pay for
/// a full search.
class IterBoundSolver final : public BestFirstFramework {
 public:
  IterBoundSolver(const Graph& graph, const Graph& reverse,
                  const KpjOptions& options)
      : BestFirstFramework(graph, reverse, options,
                           /*iterative_bounding=*/true) {}
};

}  // namespace kpj

#endif  // KPJ_CORE_ITER_BOUND_H_
