#ifndef KPJ_CORE_KWALKS_H_
#define KPJ_CORE_KWALKS_H_

#include <vector>

#include "core/kpj_query.h"
#include "core/path.h"
#include "graph/graph.h"
#include "util/status.h"

namespace kpj {

/// Top-k *general* shortest paths (walks — cycles allowed), the easier
/// sibling problem from the paper's related work (§1: Bellman-Kalaba [2],
/// Eppstein [12], Hoffman-Pavley [19]).
///
/// Implemented as k-pop Dijkstra: each node may be settled up to k times;
/// the i-th settling of the destination yields the i-th shortest walk.
/// O(k (m + n log n)) time — no simplicity constraint means no deviation
/// machinery is needed, which is exactly why these techniques "are
/// inapplicable to finding top-k simple shortest paths" (paper §1).
///
/// Provided as a reference/comparison baseline: on DAGs it coincides with
/// the KPJ result, and in general its i-th length lower-bounds the i-th
/// simple path length.
///
/// Walks are returned in non-decreasing length order. Fewer than k are
/// returned only if fewer walks exist (the target is unreachable, or every
/// source-target connection is acyclic and exhausted).
Result<std::vector<Path>> TopKShortestWalks(const Graph& graph,
                                            const KpjQuery& query);

}  // namespace kpj

#endif  // KPJ_CORE_KWALKS_H_
