#include "core/spt_cache.h"

#include <atomic>

namespace kpj {

namespace {

// FNV-1a over the key's scalar fields and target list. Only used for
// shard/bucket selection; lookups compare full keys.
inline size_t HashMix(size_t h, uint64_t value) {
  constexpr uint64_t kPrime = 1099511628211ull;
  for (int i = 0; i < 8; ++i) {
    h = (h ^ ((value >> (i * 8)) & 0xff)) * kPrime;
  }
  return h;
}

}  // namespace

size_t SptCacheKey::Hash() const {
  size_t h = 14695981039346656037ull;
  h = HashMix(h, static_cast<uint64_t>(kind));
  h = HashMix(h, epoch);
  h = HashMix(h, source);
  h = HashMix(h, config);
  for (NodeId t : targets) h = HashMix(h, t);
  return h;
}

size_t SptCacheValue::MemoryBytes() const {
  size_t total = sizeof(SptCacheValue);
  if (full_spt != nullptr) {
    total += sizeof(SptResult) +
             full_spt->dist.capacity() * sizeof(PathLength) +
             full_spt->parent.capacity() * sizeof(NodeId);
  }
  if (snapshot != nullptr) total += snapshot->MemoryBytes();
  if (settled_targets != nullptr) {
    total += sizeof(std::vector<NodeId>) +
             settled_targets->capacity() * sizeof(NodeId);
  }
  if (root_path != nullptr) total += root_path->MemoryBytes();
  return total;
}

SptCache::SptCache(size_t budget_bytes)
    : budget_bytes_(budget_bytes),
      shard_budget_(budget_bytes / kNumShards) {}

size_t SptCache::EntryBytes(const SptCacheKey& key,
                            const SptCacheValue& value) {
  // The key is stored twice (LRU list and index); add a flat allowance for
  // node and bucket overhead.
  return 2 * key.MemoryBytes() + value.MemoryBytes() + 128;
}

SptCache::Shard& SptCache::ShardFor(const SptCacheKey& key) {
  // The bottom bits feed the unordered_map buckets; take top bits for the
  // shard so the two partitions stay independent.
  return shards_[(key.Hash() >> 56) % kNumShards];
}

std::optional<SptCacheValue> SptCache::Lookup(const SptCacheKey& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->second;
}

bool SptCache::Contains(const SptCacheKey& key) const {
  const Shard& shard = shards_[(key.Hash() >> 56) % kNumShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.index.find(key) != shard.index.end();
}

void SptCache::Insert(SptCacheKey key, SptCacheValue value) {
  Shard& shard = ShardFor(key);
  size_t bytes = EntryBytes(key, value);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.bytes -= EntryBytes(it->second->first, it->second->second);
    shard.bytes += bytes;
    it->second->second = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    shard.lru.emplace_front(std::move(key), std::move(value));
    shard.index.emplace(shard.lru.front().first, shard.lru.begin());
    shard.bytes += bytes;
  }
  insertions_.fetch_add(1, std::memory_order_relaxed);
  while (shard.bytes > shard_budget_ && shard.lru.size() > 1) {
    auto& victim = shard.lru.back();
    shard.bytes -= EntryBytes(victim.first, victim.second);
    shard.index.erase(victim.first);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void SptCache::PurgeOlderEpochs(uint64_t current_epoch) {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->first.epoch < current_epoch) {
        shard.bytes -= EntryBytes(it->first, it->second);
        shard.index.erase(it->first);
        it = shard.lru.erase(it);
        evictions_.fetch_add(1, std::memory_order_relaxed);
      } else {
        ++it;
      }
    }
  }
}

SptCacheStats SptCache::StatsSnapshot() const {
  SptCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.insertions = insertions_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.bytes += shard.bytes;
    stats.entries += shard.lru.size();
  }
  return stats;
}

void SptCache::ResetStats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  insertions_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

}  // namespace kpj
