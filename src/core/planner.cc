#include "core/planner.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace kpj {
namespace {

/// EWMA weight: new = old + (sample - old) / 8. Integer arithmetic on the
/// ×16 fixed-point values keeps the profile byte-stable across replays.
constexpr uint64_t kEwmaShift = 3;

uint64_t EwmaUpdate(uint64_t old_x16, uint64_t sample_x16) {
  if (old_x16 == 0) return sample_x16;
  // Signed step so the average can move down as well as up.
  int64_t step = (static_cast<int64_t>(sample_x16) -
                  static_cast<int64_t>(old_x16)) >>
                 kEwmaShift;
  int64_t next = static_cast<int64_t>(old_x16) + step;
  return next > 0 ? static_cast<uint64_t>(next) : 1;
}

/// Relative cold-query cost priors, microseconds ×16 (ordering measured on
/// the repo's own benches; see PlannerProfile::StaticPrior). Indexed by
/// PlannerIndex. The absolute scale is arbitrary — PlannerProfile::scale_x256
/// re-anchors it to the instance online.
constexpr uint64_t kStaticPriorX16[kNumPlannableAlgorithms] = {
    /* kDA */ 6400 * 16,
    /* kDaSpt */ 3200 * 16,
    /* kBestFirst */ 2400 * 16,
    /* kIterBound */ 1200 * 16,
    /* kIterBoundSptP */ 1000 * 16,
    /* kIterBoundSptI */ 400 * 16,
    /* kIterBoundSptINoLm */ 600 * 16,
};

/// Resident-mode DA-SPT prior (below the fastest forward prior, so the
/// first resident opportunity is taken and immediately measured).
constexpr uint64_t kDaSptResidentPriorX16 = 250 * 16;

/// FNV-1a over the canonical target list + epoch; only used to pick a
/// recurrence slot, never to prove identity of a cache entry.
uint64_t FingerprintTargets(const std::vector<NodeId>& targets,
                            uint64_t epoch) {
  uint64_t h = 14695981039346656037ull ^ (epoch * 1099511628211ull);
  for (NodeId t : targets) {
    h = (h ^ t) * 1099511628211ull;
  }
  return h == 0 ? 1 : h;  // 0 marks an empty slot.
}

}  // namespace

PlannerProfile PlannerProfile::StaticPrior() {
  PlannerProfile p;
  p.samples.fill(0);
  // Relative cold-query cost prior, in microseconds ×16. Absolute scale is
  // arbitrary; the ordering reflects the repo's bench data (BENCH_engine /
  // BENCH_cache): IterBound_I fastest cold, the SPT_P/IterBound variants
  // close behind, DA-SPT paying its full reverse SPT, DA slowest.
  for (Algorithm a : kAllAlgorithms) {
    p.latency_ewma_x16us[PlannerIndex(a)] = kStaticPriorX16[PlannerIndex(a)];
  }
  // Optimistic resident-mode prior (below the fastest forward prior): the
  // first resident opportunity is taken, and the measurement it produces
  // immediately starts correcting the estimate.
  p.dasp_resident_ewma_x16us = kDaSptResidentPriorX16;
  return p;
}

QueryPlanner::QueryPlanner(const KpjInstance& instance,
                           const KpjOptions& base, PlannerOptions options)
    : instance_(instance),
      base_(ResolveOptions(instance, base)),
      options_(options),
      profile_(PlannerProfile::StaticPrior()) {}

uint64_t QueryPlanner::Effective(Algorithm a) const {
  size_t index = PlannerIndex(a);
  if (profile_.samples[index] > 0) return profile_.latency_ewma_x16us[index];
  return kStaticPriorX16[index] * profile_.scale_x256 >> 8;
}

int QueryPlanner::Quintile(uint64_t lb_x16, uint64_t scale_x16) {
  if (scale_x16 == 0) return 2;
  // The rolling mean sits at the quintile boundary 2|3: a source at the
  // typical distance from its targets is "middle", 2.5x closer is quintile
  // 0, 1.6x farther is quintile 4.
  uint64_t step = scale_x16 / 5 * 2;  // 0.4x of the scale per quintile
  if (step == 0) return 2;
  uint64_t q = lb_x16 / step;
  return q > 4 ? 4 : static_cast<int>(q);
}

std::vector<Algorithm> QueryPlanner::ColdCandidates() const {
  if (base_.oracle == nullptr) {
    // Without an oracle every bound degenerates to 0; IterBound_I-NL is
    // the variant built for that regime (§6 of the paper).
    return {Algorithm::kIterBoundSptINoLm};
  }
  // DA (quadratic deviation baseline) and the no-landmark variant are
  // dominated when an oracle is attached; everything else stays in play
  // so the online profile can promote it.
  return {Algorithm::kIterBoundSptI, Algorithm::kIterBoundSptP,
          Algorithm::kIterBound, Algorithm::kBestFirst, Algorithm::kDaSpt};
}

PlannerDecision QueryPlanner::Plan(const KpjQuery& query,
                                   const SptCache* cache, uint64_t epoch) {
  PlannerDecision decision;

  // Canonicalize the target set exactly the way PrepareQuery does
  // (internal ids, sources dropped, sorted, deduplicated) so probe keys
  // are bit-equal to the keys the solvers build. Out-of-range ids are
  // dropped here — validation rejects the query later either way.
  const NodeId num_nodes = instance_.NumNodes();
  std::vector<NodeId> targets;
  targets.reserve(query.targets.size());
  for (NodeId t : query.targets) {
    if (t >= num_nodes) continue;
    NodeId internal = instance_.ToInternal(t);
    bool is_source = false;
    for (NodeId s : query.sources) {
      if (s == t) {
        is_source = true;
        break;
      }
    }
    if (!is_source) targets.push_back(internal);
  }
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());

  std::lock_guard<std::mutex> lock(mu_);

  // 1. GKPJ runs on an ephemeral augmented graph the caches do not
  // describe: no probe can help, so take the profile-best cold algorithm
  // and count the fallback.
  if (query.sources.size() != 1) {
    uint64_t best = ~0ull;
    for (Algorithm a : ColdCandidates()) {
      uint64_t v = Effective(a);
      if (v < best) {
        best = v;
        decision.algorithm = a;
      }
    }
    decision.reason = "gkpj_no_cache";
    decision.fallback = true;
    ++decisions_;
    return decision;
  }

  const bool use_oracle = base_.oracle != nullptr;

  // The best forward (non-DA-SPT) algorithm by the global profile — the
  // alternative every residency decision is weighed against. Large k
  // disqualifies DA-SPT outright (per-deviation enumeration dwarfs any
  // tree reuse there).
  Algorithm forward_algo = use_oracle ? Algorithm::kIterBoundSptI
                                      : Algorithm::kIterBoundSptINoLm;
  uint64_t forward_best = ~0ull;
  for (Algorithm a : ColdCandidates()) {
    if (a == Algorithm::kDaSpt) continue;
    uint64_t v = Effective(a);
    if (v < forward_best) {
      forward_best = v;
      forward_algo = a;
    }
  }
  const bool dasp_k_ok = query.k < options_.large_k;

  // 2./3. Side-effect-free residency probes. The DA-SPT tree depends on
  // the target set alone (the paper's join shape: one category, many
  // sources), so a hit removes DA-SPT's biggest cost — the full reverse
  // SPT. Whether what remains beats the forward solvers is decided by the
  // paired per-shape measurements in this shape's recurrence slot: a
  // global EWMA averages over shapes and cannot arbitrate a specific
  // category (see RepeatSlot).
  if (cache != nullptr && !targets.empty()) {
    uint64_t fp = FingerprintTargets(targets, epoch);
    RepeatSlot& slot = repeats_[fp % kRepeatSlots];
    const bool slot_matches = slot.fingerprint == fp;
    decision.shape_fp = fp;

    SptCacheKey reverse_key;
    reverse_key.kind = SptCacheKind::kReverseTargetSpt;
    reverse_key.epoch = epoch;
    reverse_key.targets = targets;
    if (dasp_k_ok && cache->Contains(reverse_key)) {
      const uint64_t shape_dasp = slot_matches ? slot.dasp_x16us : 0;
      const uint64_t shape_fwd = slot_matches ? slot.fwd_x16us : 0;
      if (shape_dasp == 0) {
        decision.algorithm = Algorithm::kDaSpt;
        decision.reason = "resident_measure_dasp";
        decision.resident = true;
      } else if (shape_fwd == 0) {
        decision.algorithm = forward_algo;
        decision.reason = "resident_probe_forward";
      } else if (shape_dasp <= shape_fwd) {
        decision.algorithm = Algorithm::kDaSpt;
        decision.reason = "resident_best_dasp";
        decision.resident = true;
      } else {
        decision.algorithm = forward_algo;
        decision.reason = "resident_best_forward";
      }
      ++decisions_;
      return decision;
    }

    SptCacheKey forward_key;
    forward_key.kind = SptCacheKind::kForwardSpti;
    forward_key.epoch = epoch;
    forward_key.source = instance_.ToInternal(query.sources[0]);
    forward_key.config = SptCacheConfig(
        use_oracle, base_.max_active_landmarks,
        use_oracle ? base_.oracle->kind() : OracleKind::kAlt);
    forward_key.targets = targets;
    if (cache->Contains(forward_key)) {
      decision.algorithm = use_oracle ? Algorithm::kIterBoundSptI
                                      : Algorithm::kIterBoundSptINoLm;
      decision.reason = "forward_spt_resident";
      ++decisions_;
      return decision;
    }

    // 4. Recurring or category-sized target set with no tree resident
    // yet: invest in DA-SPT once so its reverse SPT lands in the cache
    // for the repeats the shape predicts. Seeding only pays if the
    // resident queries it enables would plausibly be routed to DA-SPT:
    // prefer this shape's own measured forward cost as the bar, falling
    // back to the global profile when the shape was never run.
    uint32_t seen = slot_matches ? slot.count : 0;
    if (!options_.pinned) {
      if (slot_matches) {
        ++slot.count;
      } else {
        slot = RepeatSlot{};
        slot.fingerprint = fp;
        slot.count = 1;
      }
    }
    const uint64_t resident_est =
        profile_.dasp_resident_samples > 0
            ? profile_.dasp_resident_ewma_x16us
            : kDaSptResidentPriorX16 * profile_.scale_x256 >> 8;
    const uint64_t forward_bar =
        slot_matches && slot.fwd_x16us != 0 ? slot.fwd_x16us : forward_best;
    if (dasp_k_ok && resident_est <= forward_bar &&
        (seen >= 1 || targets.size() >= options_.category_targets)) {
      decision.algorithm = Algorithm::kDaSpt;
      decision.reason = seen >= 1 ? "repeat_targets_seed_spt"
                                  : "category_targets_seed_spt";
      ++decisions_;
      return decision;
    }
  }

  // 5. Cold path. Features: k, |V_T|, oracle kind, landmark distance
  // quintile of the source against the rolling scale.
  int quintile = 2;
  if (use_oracle && !targets.empty()) {
    NodeId source = instance_.ToInternal(query.sources[0]);
    PathLength lb = kInfLength;
    // min over a bounded sample of targets: lb(s, V_T) <= lb(s, t).
    size_t probe = std::min<size_t>(targets.size(), 8);
    for (size_t i = 0; i < probe; ++i) {
      lb = std::min(lb, base_.oracle->LowerBound(source, targets[i]));
    }
    if (lb != kInfLength) {
      uint64_t lb_x16 = static_cast<uint64_t>(lb) * 16;
      quintile = Quintile(lb_x16, profile_.lb_scale_x16);
      if (!options_.pinned) {
        profile_.lb_scale_x16 = EwmaUpdate(profile_.lb_scale_x16, lb_x16);
        ++profile_.lb_samples;
      }
    }
  }

  if (base_.oracle == nullptr) {
    decision.algorithm = Algorithm::kIterBoundSptINoLm;
    decision.reason = "no_oracle";
    ++decisions_;
    return decision;
  }

  std::vector<Algorithm> candidates = ColdCandidates();
  uint64_t best = ~0ull;
  for (Algorithm a : candidates) {
    uint64_t v = Effective(a);
    if (v < best) {
      best = v;
      decision.algorithm = a;
    }
  }
  decision.reason = "cold_profile_best";

  // Epsilon-greedy refinement: occasionally run a plausible non-best
  // candidate so its EWMA tracks reality. "Plausible" = within 4x of the
  // best, and only queries whose features predict a typical cost explore
  // at all (quintile <= 2, k < large_k): regret per explore is bounded by
  // a typical query, never a pathological one. The PRNG stream is a pure
  // function of (seed, decision index) — replays explore at the same
  // decision points.
  if (!options_.pinned && options_.explore_one_in > 0 && quintile <= 2 &&
      query.k < options_.large_k) {
    uint64_t state = options_.seed ^ (decisions_ * 0x9e3779b97f4a7c15ull);
    uint64_t r = SplitMix64(state);
    if (r % options_.explore_one_in == 0) {
      std::vector<Algorithm> plausible;
      for (Algorithm a : candidates) {
        if (Effective(a) <= best * 4) plausible.push_back(a);
      }
      if (plausible.size() > 1) {
        decision.algorithm =
            plausible[SplitMix64(state) % plausible.size()];
        decision.reason = "explore";
      }
    }
  }
  ++decisions_;
  return decision;
}

void QueryPlanner::RecordLatency(Algorithm algorithm, bool resident,
                                 uint64_t shape_fp, double elapsed_ms) {
  if (options_.pinned) return;
  if (!(elapsed_ms >= 0.0) || !std::isfinite(elapsed_ms)) return;
  uint64_t sample_x16 =
      static_cast<uint64_t>(std::llround(elapsed_ms * 1000.0 * 16.0));
  if (sample_x16 == 0) sample_x16 = 1;
  size_t index = PlannerIndex(algorithm);
  if (index >= kNumPlannableAlgorithms) return;
  std::lock_guard<std::mutex> lock(mu_);
  // Shape-conditioned estimate: resident DA-SPT runs and forward runs of
  // the same target set are the pair the residency rule arbitrates. Cold
  // DA-SPT runs (tree build included) belong to neither side.
  if (shape_fp != 0) {
    RepeatSlot& slot = repeats_[shape_fp % kRepeatSlots];
    if (slot.fingerprint == shape_fp) {
      if (algorithm == Algorithm::kDaSpt) {
        if (resident) {
          slot.dasp_x16us = slot.dasp_x16us == 0
                                ? sample_x16
                                : EwmaUpdate(slot.dasp_x16us, sample_x16);
        }
      } else {
        slot.fwd_x16us = slot.fwd_x16us == 0
                             ? sample_x16
                             : EwmaUpdate(slot.fwd_x16us, sample_x16);
      }
    }
  }
  if (resident && algorithm == Algorithm::kDaSpt) {
    // The prior is in arbitrary prior units; the first real sample replaces
    // it outright rather than blending incommensurable scales.
    profile_.dasp_resident_ewma_x16us =
        profile_.dasp_resident_samples == 0
            ? sample_x16
            : EwmaUpdate(profile_.dasp_resident_ewma_x16us, sample_x16);
    ++profile_.dasp_resident_samples;
    return;
  }
  bool first_overall = true;
  for (uint64_t s : profile_.samples) {
    if (s != 0) {
      first_overall = false;
      break;
    }
  }
  profile_.latency_ewma_x16us[index] =
      profile_.samples[index] == 0
          ? sample_x16
          : EwmaUpdate(profile_.latency_ewma_x16us[index], sample_x16);
  ++profile_.samples[index];
  // Re-anchor the still-unmeasured priors: observed / prior, ×256. One real
  // sample is enough to stop the cold argmin from treating every prior as
  // if this instance ran at the priors' microsecond magnitude.
  uint64_t ratio_x256 = sample_x16 * 256 / kStaticPriorX16[index];
  if (ratio_x256 == 0) ratio_x256 = 1;
  profile_.scale_x256 =
      first_overall ? ratio_x256 : EwmaUpdate(profile_.scale_x256, ratio_x256);
}

PlannerProfile QueryPlanner::ProfileSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return profile_;
}

void QueryPlanner::PinProfile(const PlannerProfile& profile) {
  std::lock_guard<std::mutex> lock(mu_);
  profile_ = profile;
  options_.pinned = true;
}

}  // namespace kpj
