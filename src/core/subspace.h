#ifndef KPJ_CORE_SUBSPACE_H_
#define KPJ_CORE_SUBSPACE_H_

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "core/kpj_query.h"
#include "core/pseudo_tree.h"
#include "util/logging.h"
#include "util/small_vec.h"
#include "util/types.h"

namespace kpj {

/// Priority-queue entry of the best-first / iteratively-bounding solvers:
/// one live entry per pseudo-tree vertex (subspace), carrying either a
/// lower bound (`has_path == false`, the paper's ⟨S, lb(S), ∅⟩) or the
/// subspace's computed shortest path (⟨S, ω(sp(S)), sp(S)⟩).
struct SubspaceEntry {
  /// lb(S) or the exact total path length, in the same ordering domain.
  double key = 0.0;
  uint32_t vertex = PseudoTree::kNoVertex;
  bool has_path = false;
  /// For has_path: total weight of the suffix edges.
  PathLength suffix_length = 0;
  /// For has_path: path nodes strictly after the vertex's node (so empty
  /// for a path ending at the vertex itself). This is also exactly the
  /// argument DivideSubspace expects. Small-vector backed: most suffixes
  /// are short deviations, and entries churn through the queue constantly.
  SmallVec<NodeId, 8> suffix;
};

/// Min-priority queue over SubspaceEntry that supports moving entries out
/// (std::priority_queue::top is const). Ties prefer entries with paths so
/// an exact path never waits behind an equal lower bound.
class SubspaceQueue {
 public:
  void Push(SubspaceEntry entry) {
    heap_.push_back(std::move(entry));
    std::push_heap(heap_.begin(), heap_.end(), Later);
  }

  SubspaceEntry Pop() {
    KPJ_DCHECK(!heap_.empty());
    std::pop_heap(heap_.begin(), heap_.end(), Later);
    SubspaceEntry out = std::move(heap_.back());
    heap_.pop_back();
    return out;
  }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Key of the minimum entry (+infinity when empty) — Q.top().key of
  /// Alg. 4 line 9.
  double TopKey() const {
    return heap_.empty() ? std::numeric_limits<double>::infinity()
                         : heap_.front().key;
  }

  void Clear() { heap_.clear(); }

 private:
  // "Later" ordering for std::*_heap's max-heap machinery: a is popped
  // after b iff a's key is larger (or equal with a lacking a path).
  static bool Later(const SubspaceEntry& a, const SubspaceEntry& b) {
    if (a.key != b.key) return a.key > b.key;
    return !a.has_path && b.has_path;
  }

  std::vector<SubspaceEntry> heap_;
};

/// Assembles the full result path for an entry: tree prefix plus suffix.
/// `reverse_oriented` flips the node order (the SPT_I solver's tree grows
/// from the destination side, §5.3).
inline Path AssemblePath(const PseudoTree& tree, const SubspaceEntry& entry,
                         bool reverse_oriented) {
  Path out;
  tree.GetPrefixNodes(entry.vertex, &out.nodes);
  out.nodes.insert(out.nodes.end(), entry.suffix.begin(),
                   entry.suffix.end());
  out.length = tree.vertex(entry.vertex).prefix_length + entry.suffix_length;
  if (reverse_oriented) std::reverse(out.nodes.begin(), out.nodes.end());
  return out;
}

}  // namespace kpj

#endif  // KPJ_CORE_SUBSPACE_H_
