#ifndef KPJ_CORE_VERIFIER_H_
#define KPJ_CORE_VERIFIER_H_

#include <string>
#include <vector>

#include "core/kpj_query.h"
#include "graph/graph.h"
#include "util/status.h"

namespace kpj {

/// Independent ground truth for tests: enumerates the top-k shortest
/// simple source-to-target-set paths by uniform-cost search over the tree
/// of partial simple paths (no pseudo-tree, no subspaces, no heuristics —
/// deliberately sharing no code with the solvers under test).
///
/// Exponential in the worst case; intended for the small randomized graphs
/// of the property suites. `max_expansions` aborts runaway inputs.
Result<std::vector<Path>> EnumerateTopKPaths(const Graph& graph,
                                             const KpjQuery& query,
                                             uint64_t max_expansions =
                                                 20'000'000);

/// Structural validation of a solver answer against the query contract:
///  * every path starts at a source, ends at a target, is simple, uses
///    only real arcs, and its cached length matches recomputation;
///  * lengths are non-decreasing;
///  * no duplicate paths;
///  * the trivial zero-length path does not appear.
/// Returns OK or a description of the first violation.
Status ValidateResultStructure(const Graph& graph, const KpjQuery& query,
                               const std::vector<Path>& paths);

/// Full check: structure plus agreement of the length multiset with the
/// reference enumeration (path identities may differ under ties).
Status ValidateAgainstReference(const Graph& graph, const KpjQuery& query,
                                const std::vector<Path>& paths);

}  // namespace kpj

#endif  // KPJ_CORE_VERIFIER_H_
