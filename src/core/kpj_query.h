#ifndef KPJ_CORE_KPJ_QUERY_H_
#define KPJ_CORE_KPJ_QUERY_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/instrumentation.h"
#include "core/path.h"
#include "index/distance_oracle.h"
#include "util/cancellation.h"
#include "util/epoch_array.h"
#include "util/status.h"
#include "util/types.h"

namespace kpj {

/// A (G)KPJ query: top-k shortest simple paths from any source to any
/// target node (paper §2 and §6).
///
/// `sources.size() == 1` is the KPJ query Q = {s, T, k} studied in the body
/// of the paper; multiple sources form a GKPJ query; a single source plus a
/// single target is a classic KSP query.
struct KpjQuery {
  std::vector<NodeId> sources;
  std::vector<NodeId> targets;  // V_T, retrieved via the category index.
  uint32_t k = 1;
};

/// The seven algorithms evaluated in the paper's §7, plus the adaptive
/// planner sentinel. kAuto is not a solver: when an engine is configured
/// with it, core/planner.h picks one of the seven per query (all of which
/// return byte-identical answers, so the choice is purely a speed matter).
enum class Algorithm {
  kDA,                  // Yen's deviation baseline (Alg. 1, [28])
  kDaSpt,               // state-of-the-art KSP baseline with full SPT [15]
  kBestFirst,           // best-first subspace search (Alg. 2)
  kIterBound,           // iteratively bounding (Alg. 4)
  kIterBoundSptP,       // + partial shortest path tree (§5.2)
  kIterBoundSptI,       // + incremental shortest path tree (§5.3)
  kIterBoundSptINoLm,   // IterBound_I without landmarks (§6)
  kAuto,                // per-query adaptive choice (core/planner.h)
};

/// Short display name ("DA", "IterBoundI", ...).
const char* AlgorithmName(Algorithm algorithm);

/// All runnable algorithms, in the order the paper lists them. kAuto is
/// deliberately absent: it is a planner sentinel, not a solver, so code
/// iterating this array (conformance tests, ParseAlgorithm, the planner's
/// own candidate set) never sees it.
inline constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kDA,           Algorithm::kDaSpt,
    Algorithm::kBestFirst,    Algorithm::kIterBound,
    Algorithm::kIterBoundSptP, Algorithm::kIterBoundSptI,
    Algorithm::kIterBoundSptINoLm,
};

/// Knobs shared by all solvers.
struct KpjOptions {
  Algorithm algorithm = Algorithm::kIterBoundSptI;
  /// τ growth factor of the iteratively bounding approaches (Alg. 4
  /// line 9); must be > 1. The paper settles on 1.1 (Fig. 6(b)).
  double alpha = 1.1;
  /// Offline lower-bound oracle (index/distance_oracle.h): the landmark
  /// (ALT) index or the hub-label index. May be null (all bounds become 0,
  /// §6 "Computing without Landmark"). kIterBoundSptINoLm ignores it.
  const DistanceOracle* oracle = nullptr;
  /// Extension: evaluate only the best `max_active_landmarks` landmarks
  /// per query (scored at the query endpoints); 0 evaluates all of them.
  /// Cuts the per-node bound cost at a small pruning-quality cost.
  /// ALT-specific; exact oracles ignore it.
  uint32_t max_active_landmarks = 0;
};

/// Work counters; filled by every solver.
struct QueryStats {
  /// Exact shortest-path computations: candidate computations in the
  /// deviation algorithms, CompSP calls in the best-first ones.
  /// Lemma 4.1 is stated in terms of this counter.
  uint64_t shortest_path_computations = 0;
  /// TestLB invocations (iteratively bounding approaches only).
  uint64_t lower_bound_tests = 0;
  /// Subspaces created by division / candidate paths generated.
  uint64_t subspaces_created = 0;
  /// Nodes settled across all internal searches (incl. SPT construction).
  uint64_t nodes_settled = 0;
  /// Edges relaxed across all internal searches.
  uint64_t edges_relaxed = 0;
  /// Peak size of the subspace / candidate priority queue.
  uint64_t max_queue_size = 0;
  /// Nodes in the online SPT (full SPT for DA-SPT, SPT_P / SPT_I sizes).
  uint64_t spt_nodes = 0;
  /// Final τ reached (iteratively bounding approaches only).
  double final_tau = 0.0;
  /// Fine-grained algorithm counters (heap traffic, SPT reuse, bounding
  /// rounds, candidate churn, lower-bound tightness). Always filled; the
  /// engine aggregates these across workers for metrics exposition.
  AlgoStats algo;

  /// Merges counters collected by an independent slice of the query (one
  /// deviation slot of a parallel round): sums the work counters, takes
  /// the max of the running maxima. Integer sums commute, so merging in
  /// canonical slot order yields the same totals as sequential execution.
  void Accumulate(const QueryStats& other) {
    shortest_path_computations += other.shortest_path_computations;
    lower_bound_tests += other.lower_bound_tests;
    subspaces_created += other.subspaces_created;
    nodes_settled += other.nodes_settled;
    edges_relaxed += other.edges_relaxed;
    max_queue_size = std::max(max_queue_size, other.max_queue_size);
    spt_nodes += other.spt_nodes;
    final_tau = std::max(final_tau, other.final_tau);
    algo.Accumulate(other.algo);
  }
};

/// Query answer: up to k paths, sorted by non-decreasing length. Fewer than
/// k paths are returned when the graph does not contain k simple paths.
///
/// `status` is OK for a complete answer. A cancelled or deadline-bounded
/// query returns kCancelled / kDeadlineExceeded together with the paths
/// proven optimal before the stop — a well-formed partial result, never a
/// crash. Stats always reflect the work actually performed.
struct KpjResult {
  std::vector<Path> paths;
  QueryStats stats;
  Status status;
  /// The solver that actually produced the paths. Equal to the configured
  /// algorithm in fixed mode; in `auto` mode it is the planner's choice.
  Algorithm algorithm_used = Algorithm::kIterBoundSptI;
  /// Planner decision provenance (static string, never owned): which rule
  /// of the cost model fired. Empty in fixed mode (planner bypassed).
  const char* planner_reason = "";
};

struct QueryCacheContext;   // core/spt_cache.h
struct IntraQueryContext;   // core/intra.h

/// A validated, single-source view of a query that solvers execute.
/// kpj.cc (the facade) builds this from a KpjQuery — directly for a single
/// source, or via a virtual super-source for GKPJ (§6).
struct PreparedQuery {
  const Graph* graph = nullptr;    // forward graph (possibly augmented)
  const Graph* reverse = nullptr;  // its reverse
  NodeId source = kInvalidNode;    // single (possibly virtual) source
  std::vector<NodeId> targets;     // V_T with the source removed
  uint32_t k = 1;
  /// Real source nodes (for landmark bounds on the source side; equals
  /// {source} unless the source is virtual).
  std::vector<NodeId> real_sources;
  /// True when `source` is a virtual super-source to strip from output.
  bool virtual_source = false;
  /// Optional cooperative cancellation token polled by the solver's
  /// expansion loops (deadline / budget enforcement). Not owned; must
  /// outlive the Run call. nullptr runs to completion.
  const CancellationToken* cancel = nullptr;
  /// Optional cross-query reuse caches (core/spt_cache.h), set by the
  /// engine when caching is enabled. Not owned; nullptr disables reuse.
  /// Solvers adopting cached state must stay byte-identical to a cold run.
  const QueryCacheContext* cache = nullptr;
  /// Optional intra-query parallelism context (core/intra.h), set by the
  /// engine when intra_threads > 1. Not owned; nullptr (or threads <= 1)
  /// runs deviation rounds inline. Results are byte-identical either way.
  const IntraQueryContext* intra = nullptr;
};

}  // namespace kpj

#endif  // KPJ_CORE_KPJ_QUERY_H_
