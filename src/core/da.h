#ifndef KPJ_CORE_DA_H_
#define KPJ_CORE_DA_H_

#include <memory>
#include <vector>

#include "core/constraint.h"
#include "core/intra.h"
#include "core/kpj_query.h"
#include "core/pseudo_tree.h"
#include "core/solver.h"
#include "core/subspace.h"
#include "sssp/astar.h"

namespace kpj {

/// DA — the deviation-paradigm baseline (paper Alg. 1; Yen [28]).
///
/// Maintains the pseudo-tree of chosen paths and a candidate set with one
/// *computed* shortest path per subspace: every division immediately runs
/// a constrained Dijkstra per new subspace ("the candidate paths are
/// computed by traversing the graph exhaustively"), which is exactly the
/// inefficiency the paper's best-first approaches remove.
///
/// The candidate computations of one division are independent of each
/// other, so with an intra-query context they run as one parallel
/// deviation round (ExpandDivision) with a deterministic slot-order merge.
class DaSolver final : public KpjSolver {
 public:
  DaSolver(const Graph& graph, const Graph& reverse,
           const KpjOptions& options);

  KpjResult Run(const PreparedQuery& query) override;

 private:
  /// Computes the candidate path of vertex `v` with workspace `cs` (a
  /// constrained Dijkstra); fills `entry` and returns true if one exists.
  bool ComputeCandidate(uint32_t v, ConstrainedSearch& cs,
                        SubspaceEntry* entry, QueryStats* stats);

  /// ComputeCandidate on the solver's main workspace, pushing into `queue`.
  void PushCandidate(uint32_t v, SubspaceQueue& queue, QueryStats* stats);

  /// Runs one deviation round over the division's subspaces (revised
  /// vertex first, created vertices in order) — in parallel when the query
  /// carries an intra context — and merges candidates into `queue` in that
  /// same canonical slot order.
  void ExpandDivision(const DivisionResult& division, SubspaceQueue& queue,
                      QueryStats* stats);

  const Graph& graph_;
  ConstrainedSearch search_;
  PseudoTree tree_;
  ZeroHeuristic zero_;
  /// Per-query cancellation token (from PreparedQuery); set by Run.
  const CancellationToken* cancel_ = nullptr;
  /// Per-query intra-parallelism context (from PreparedQuery); set by Run.
  const IntraQueryContext* intra_ = nullptr;
  /// Helper-lane search workspaces (lane L >= 1 uses lane_search_[L-1];
  /// lane 0 is `search_`). Created once, reused across queries.
  std::vector<std::unique_ptr<ConstrainedSearch>> lane_search_;
};

}  // namespace kpj

#endif  // KPJ_CORE_DA_H_
