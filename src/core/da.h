#ifndef KPJ_CORE_DA_H_
#define KPJ_CORE_DA_H_

#include "core/constraint.h"
#include "core/kpj_query.h"
#include "core/pseudo_tree.h"
#include "core/solver.h"
#include "core/subspace.h"
#include "sssp/astar.h"

namespace kpj {

/// DA — the deviation-paradigm baseline (paper Alg. 1; Yen [28]).
///
/// Maintains the pseudo-tree of chosen paths and a candidate set with one
/// *computed* shortest path per subspace: every division immediately runs
/// a constrained Dijkstra per new subspace ("the candidate paths are
/// computed by traversing the graph exhaustively"), which is exactly the
/// inefficiency the paper's best-first approaches remove.
class DaSolver final : public KpjSolver {
 public:
  DaSolver(const Graph& graph, const Graph& reverse,
           const KpjOptions& options);

  KpjResult Run(const PreparedQuery& query) override;

 private:
  /// Computes the candidate path of vertex `v` (a constrained Dijkstra)
  /// and pushes it into `queue` if one exists.
  void PushCandidate(uint32_t v, SubspaceQueue& queue, QueryStats* stats);

  const Graph& graph_;
  ConstrainedSearch search_;
  PseudoTree tree_;
  ZeroHeuristic zero_;
  /// Per-query cancellation token (from PreparedQuery); set by Run.
  const CancellationToken* cancel_ = nullptr;
};

}  // namespace kpj

#endif  // KPJ_CORE_DA_H_
