#ifndef KPJ_CORE_PATH_H_
#define KPJ_CORE_PATH_H_

#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/small_vec.h"
#include "util/types.h"

namespace kpj {

/// Node-sequence storage of a result path. Small-vector backed: short
/// paths (the common case for nearby POI queries and the unit tests) stay
/// inline and never touch the global allocator.
using PathNodes = SmallVec<NodeId, 8>;

/// A simple path: node sequence plus its (cached) length.
struct Path {
  PathNodes nodes;
  PathLength length = 0;

  bool empty() const { return nodes.empty(); }
  NodeId Source() const { return nodes.front(); }
  NodeId Destination() const { return nodes.back(); }
  size_t NumEdges() const { return nodes.empty() ? 0 : nodes.size() - 1; }
};

bool operator==(const Path& a, const Path& b);

/// True if no node repeats (paper §2: KPJ paths must be simple).
bool IsSimplePath(std::span<const NodeId> nodes);

/// Recomputes the length of `nodes` on `graph`; kInfLength if some
/// consecutive pair is not an arc. Used to validate algorithm output.
PathLength ComputePathLength(const Graph& graph,
                             std::span<const NodeId> nodes);

/// "v0 -> v1 -> v2 (len 42)" rendering for logs and examples.
std::string PathToString(const Path& path);

}  // namespace kpj

#endif  // KPJ_CORE_PATH_H_
