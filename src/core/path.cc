#include "core/path.h"

#include <algorithm>
#include <sstream>

namespace kpj {

bool operator==(const Path& a, const Path& b) {
  return a.length == b.length && a.nodes == b.nodes;
}

bool IsSimplePath(std::span<const NodeId> nodes) {
  std::vector<NodeId> sorted(nodes.begin(), nodes.end());
  std::sort(sorted.begin(), sorted.end());
  return std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end();
}

PathLength ComputePathLength(const Graph& graph,
                             std::span<const NodeId> nodes) {
  PathLength total = 0;
  for (size_t i = 0; i + 1 < nodes.size(); ++i) {
    if (nodes[i] >= graph.NumNodes()) return kInfLength;
    PathLength w = graph.EdgeWeight(nodes[i], nodes[i + 1]);
    if (w == kInfLength) return kInfLength;
    total += w;
  }
  return total;
}

std::string PathToString(const Path& path) {
  std::ostringstream out;
  for (size_t i = 0; i < path.nodes.size(); ++i) {
    if (i > 0) out << " -> ";
    out << path.nodes[i];
  }
  out << " (len " << path.length << ")";
  return out.str();
}

}  // namespace kpj
