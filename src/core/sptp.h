#ifndef KPJ_CORE_SPTP_H_
#define KPJ_CORE_SPTP_H_

#include <memory>
#include <optional>

#include "core/best_first.h"
#include "core/heuristics.h"
#include "sssp/incremental_search.h"

namespace kpj {

/// IterBound-SPT_P (paper §5.2, Alg. 6): the iteratively bounding approach
/// whose lb(v, V_T) comes from a *partial* shortest path tree.
///
/// The initial shortest-path query is answered by A* over the reverse
/// graph from all of V_T toward the source (PartialSPT, Alg. 6); the nodes
/// it settles — obtained "without any extra cost" as a by-product — carry
/// exact distances to the destination set and take priority over the
/// landmark estimate (Prop. 5.1), tightening CompLB and TestLB.
class IterBoundSptpSolver final : public BestFirstFramework {
 public:
  IterBoundSptpSolver(const Graph& graph, const Graph& reverse,
                      const KpjOptions& options);

 protected:
  bool InitializeQuery(const PreparedQuery& query, SubspaceEntry* initial,
                       QueryStats* stats) override;

 private:
  IncrementalSearch sptp_;  // Reverse-graph A*; settled set = SPT_P.
  /// Per-query source-side bound guiding SPT_P construction (lb(s, w)).
  std::unique_ptr<Heuristic> source_bound_;
  /// Per-query SPT_P-over-oracle bound used by CompLB / TestLB.
  std::optional<SptpBound> sptp_bound_;
};

}  // namespace kpj

#endif  // KPJ_CORE_SPTP_H_
