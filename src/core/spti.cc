#include "core/spti.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/spt_cache.h"

namespace kpj {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

PathLength TauToBound(double tau) {
  if (!std::isfinite(tau)) return kInfLength;
  if (tau <= 0) return 0;
  if (tau >= 1.8e19) return kInfLength;
  return static_cast<PathLength>(tau);  // Keys are integral: floor is exact.
}

}  // namespace

IterBoundSptiSolver::IterBoundSptiSolver(const Graph& graph,
                                         const Graph& reverse,
                                         const KpjOptions& options,
                                         bool use_landmarks)
    : graph_(graph),
      reverse_(reverse),
      options_(options),
      use_landmarks_(use_landmarks),
      rev_search_(reverse),
      spti_(graph, &zero_),
      target_membership_(graph.NumNodes()) {
  KPJ_CHECK(options_.alpha > 1.0) << "alpha must exceed 1";
}

void IterBoundSptiSolver::GrowTree(double tau, QueryStats* stats) {
  size_t before = spti_.num_settled();
  spti_.AdvanceToBound(TauToBound(tau), [this](NodeId v) {
    if (target_membership_.Contains(v)) d_.push_back(v);
  });
  // A "resume hit" answered the new τ entirely from the existing tree —
  // the payoff of keeping SPT_I alive across bounding rounds (§5.3).
  if (spti_.num_settled() == before) {
    ++stats->algo.spt_resume_hits;
  } else {
    ++stats->algo.spt_resume_misses;
  }
}

double IterBoundSptiSolver::CompLb(uint32_t v, const PreparedQuery& query,
                                   EpochSet* forbidden_scratch,
                                   QueryStats* stats) {
  const PseudoTree::Vertex& vx = tree_.vertex(v);
  forbidden_scratch->ClearAll();
  tree_.MarkPrefix(v, forbidden_scratch);
  const EpochSet& forbidden = *forbidden_scratch;

  double lb = kInfinity;
  if (vx.node == kInvalidNode) {
    // Root (virtual t): N(t) = D, virtual hops of weight 0 (Alg. 8
    // line 1); exact lb(s, x) = ds(x) for every settled target.
    for (NodeId x : d_) {
      bool banned = false;
      for (NodeId b : vx.banned) {
        if (b == x) {
          banned = true;
          break;
        }
      }
      if (banned || forbidden.Contains(x)) continue;
      lb = std::min(lb, static_cast<double>(spti_.Distance(x)));
    }
    if (d_.size() < query.targets.size() && !spti_.Exhausted()) {
      // Paths entering through a target not yet in D cost at least the
      // SPT_I frontier key (refinement of Alg. 8 line 8).
      lb = std::min(lb, static_cast<double>(spti_.FrontierKey()));
    }
    return lb;
  }

  // Alg. 8 lines 3-7: one reverse hop plus lb(s, ·) — exact inside SPT_I,
  // Eq. (2) landmarks (or zero) outside.
  for (const OutEdge& e : reverse_.OutEdges(vx.node)) {
    ++stats->edges_relaxed;
    if (forbidden.Contains(e.to)) continue;
    bool banned = false;
    for (NodeId b : vx.banned) {
      if (b == e.to) {
        banned = true;
        break;
      }
    }
    if (banned) continue;
    PathLength h = reverse_heuristic_->Estimate(e.to);
    if (h == kInfLength) continue;
    lb = std::min(lb, static_cast<double>(
                          SatAdd(vx.prefix_length, SatAdd(e.weight, h))));
  }
  return lb;
}

void IterBoundSptiSolver::ExpandDivision(const DivisionResult& division,
                                         const PreparedQuery& query,
                                         double chosen_length,
                                         SubspaceQueue& queue,
                                         QueryStats* stats) {
  // Canonical slot order — revised vertex, then created vertices in
  // creation order — matches sequential execution; the merge below
  // preserves it regardless of which lane computed which slot.
  std::vector<uint32_t> slots;
  slots.reserve(1 + division.created.size());
  slots.push_back(division.revised);
  slots.insert(slots.end(), division.created.begin(),
               division.created.end());

  struct Slot {
    double lb = kInfinity;
    QueryStats stats;
  };
  std::vector<Slot> results(slots.size());
  RunDeviationRound(
      intra_, slots.size(), &stats->algo, [&](size_t i, unsigned lane) {
        // Stolen tasks poll the token too; a skipped lb only matters when
        // cancelled, where the main loop exits before using it.
        if (cancel_ != nullptr && cancel_->ShouldStop()) return;
        EpochSet* forbidden = lane == 0 ? &rev_search_.forbidden()
                                        : lane_forbidden_[lane - 1].get();
        results[i].lb = CompLb(slots[i], query, forbidden,
                               &results[i].stats);
      });
  for (size_t i = 0; i < results.size(); ++i) {
    stats->Accumulate(results[i].stats);
    ++stats->subspaces_created;
    if (results[i].lb == kInfinity) {
      ++stats->algo.candidates_pruned;
      continue;
    }
    SubspaceEntry fresh;
    fresh.vertex = slots[i];
    fresh.key = std::max(results[i].lb, chosen_length);
    queue.Push(std::move(fresh));
  }
}

KpjResult IterBoundSptiSolver::Run(const PreparedQuery& query) {
  KPJ_CHECK(query.graph == &graph_ && query.reverse == &reverse_)
      << "solver bound to different graphs";
  KpjResult res;
  cancel_ = query.cancel;
  intra_ = query.intra;
  // One forbidden-set scratch (reverse-graph sized) per helper lane,
  // provisioned up front so rounds never allocate into shared vectors.
  while (lane_forbidden_.size() + 1 < IntraLanes(intra_)) {
    lane_forbidden_.push_back(
        std::make_unique<EpochSet>(reverse_.NumNodes()));
  }
  spti_.SetCancelToken(cancel_);
  // res is stack storage: the pointer is cleared on every exit path below.
  spti_.SetAlgoStats(&res.stats.algo);

  SptCache* spt_cache = query.cache != nullptr ? query.cache->spt : nullptr;
  TargetBoundCache* bound_cache =
      query.cache != nullptr ? query.cache->bounds : nullptr;
  const uint64_t epoch = query.cache != nullptr ? query.cache->epoch : 0;

  // Per-query bounds (§4.2 / §6).
  const Heuristic* forward_guide = &zero_;
  const Heuristic* source_fallback = &zero_;
  if (use_landmarks_ && options_.oracle != nullptr) {
    forward_bound_ = MakeCachedSetBound(
        options_.oracle, query.targets, BoundDirection::kToSet, query.source,
        options_.max_active_landmarks, bound_cache, epoch, &res.stats.algo);
    forward_guide = forward_bound_.get();
    source_bound_ = MakeCachedSetBound(
        options_.oracle, query.real_sources, BoundDirection::kFromSet,
        query.targets.front(), options_.max_active_landmarks, bound_cache,
        epoch, &res.stats.algo);
    source_fallback = source_bound_.get();
  } else {
    forward_bound_.reset();
    source_bound_.reset();
  }
  reverse_heuristic_.emplace(&spti_, source_fallback);

  // Phase 1 of SPT_I: the initial shortest path as a by-product (§5.3).
  // Cross-query reuse caches the *end-of-phase-1* state only: the grown
  // tree of the main loop depends on k and the subspace schedule, and a
  // warm superset tree would change lower bounds (hence tie-breaking).
  // The phase-1 state is a pure function of (source, targets, heuristic
  // config), so restoring it is byte-identical to recomputing it.
  spti_.SetHeuristic(forward_guide);
  target_membership_.ClearAll();
  for (NodeId t : query.targets) target_membership_.Insert(t);
  d_.clear();

  SptCacheKey key;
  bool restored = false;
  NodeId hit = kInvalidNode;
  if (spt_cache != nullptr) {
    key.kind = SptCacheKind::kForwardSpti;
    key.epoch = epoch;
    key.source = query.source;
    const bool use_oracle = use_landmarks_ && options_.oracle != nullptr;
    key.config = SptCacheConfig(
        use_oracle, options_.max_active_landmarks,
        use_oracle ? options_.oracle->kind() : OracleKind::kAlt);
    key.targets = query.targets;
    if (std::optional<SptCacheValue> cached = spt_cache->Lookup(key)) {
      spti_.RestoreSnapshot(*cached->snapshot);
      d_ = *cached->settled_targets;  // {hit}, or empty when unreachable.
      hit = d_.empty() ? kInvalidNode : d_.front();
      ++res.stats.algo.spt_cache_hits;
      restored = true;
    } else {
      ++res.stats.algo.spt_cache_misses;
    }
  }
  if (!restored) {
    std::pair<NodeId, PathLength> seed[] = {{query.source, 0}};
    spti_.Initialize(seed);
    hit = spti_.AdvanceUntilAnySettled(
        target_membership_,
        [this](NodeId v) {
          if (target_membership_.Contains(v)) d_.push_back(v);
        });
    if (spt_cache != nullptr &&
        (cancel_ == nullptr || !cancel_->ShouldStop())) {
      // Unreachable (exhausted) phase-1 states are cacheable too;
      // cancelled (truncated) ones are not.
      auto snap = std::make_shared<SearchSnapshot>();
      spti_.ExportSnapshot(snap.get());
      SptCacheValue value;
      value.snapshot = std::move(snap);
      value.settled_targets =
          std::make_shared<const std::vector<NodeId>>(d_);
      spt_cache->Insert(std::move(key), std::move(value));
    }
  }
  if (hit == kInvalidNode) {
    res.stats.nodes_settled += spti_.stats().nodes_settled;
    res.stats.edges_relaxed += spti_.stats().edges_relaxed;
    // Either the category is unreachable (no paths at all) or the token
    // tripped mid-phase-1; the token distinguishes them.
    if (cancel_ != nullptr && cancel_->ShouldStop()) {
      res.status = cancel_->CancelStatus();
    }
    spti_.SetAlgoStats(nullptr);
    return res;
  }

  tree_.Reset(kInvalidNode);  // Virtual destination t.
  rev_search_.SetTargets({&query.source, 1});

  SubspaceQueue queue;
  {
    std::vector<NodeId> forward_path = spti_.PathTo(hit);  // s .. hit
    KPJ_DCHECK(forward_path.front() == query.source);
    SubspaceEntry initial;
    initial.vertex = tree_.root();
    initial.has_path = true;
    initial.suffix_length = spti_.Distance(hit);
    initial.key = static_cast<double>(initial.suffix_length);
    initial.suffix.assign(forward_path.rbegin(), forward_path.rend());
    ++res.stats.algo.candidates_generated;
    queue.Push(std::move(initial));
  }
  res.stats.final_tau = static_cast<double>(spti_.Distance(hit));

  while (res.paths.size() < query.k && !queue.empty()) {
    if (cancel_ != nullptr && cancel_->ShouldStop()) break;
    res.stats.max_queue_size =
        std::max<uint64_t>(res.stats.max_queue_size, queue.size());
    SubspaceEntry entry = queue.Pop();

    if (entry.has_path) {
      res.paths.push_back(
          AssemblePath(tree_, entry, /*reverse_oriented=*/true));
      if (res.paths.size() == query.k) break;

      DivisionResult division = DivideSubspace(
          tree_, reverse_, entry.vertex, entry.suffix,
          /*create_destination_vertex=*/false);
      ExpandDivision(division, query, entry.key, queue, &res.stats);
      continue;
    }

    // TestLB-SPT_I with τ = α · max(lb(S), Q.top().key) (Alg. 4 line 9).
    const PseudoTree::Vertex& vx = tree_.vertex(entry.vertex);
    double base = std::max(entry.key, queue.TopKey());
    double tau = kInfinity;
    if (std::isfinite(base)) {
      tau = std::max(options_.alpha * base, base + 1.0);
      res.stats.final_tau = std::max(res.stats.final_tau, tau);
    }
    GrowTree(tau, &res.stats);  // Alg. 7, between lines 9 and 10 of Alg. 4.

    rev_search_.ClearForbidden();
    tree_.MarkPrefix(entry.vertex, &rev_search_.forbidden());
    SubspaceSearchRequest request;
    request.start = vx.node;  // kInvalidNode at the root.
    request.seeds = d_;
    // Targets not yet settled by SPT_I all lie beyond τ (Prop. 5.2); the
    // root subspace must not be declared empty while any remain.
    request.seeds_incomplete =
        d_.size() < query.targets.size() && !spti_.Exhausted();
    request.prefix_length = vx.prefix_length;
    request.banned_first_hops = vx.banned;
    request.tau = tau;
    request.restrict_to = &spti_;
    request.cancel = cancel_;

    if (std::isfinite(tau)) {
      ++res.stats.lower_bound_tests;
    } else {
      ++res.stats.shortest_path_computations;
    }
    SubspaceSearchResult result =
        rev_search_.Run(request, *reverse_heuristic_, &res.stats);
    if (cancel_ != nullptr && cancel_->ShouldStop()) break;
    switch (result.outcome) {
      case SearchOutcome::kFound: {
        if (std::isfinite(tau)) ++res.stats.shortest_path_computations;
        SubspaceEntry found;
        found.vertex = entry.vertex;
        found.has_path = true;
        found.suffix_length = result.suffix_length;
        found.key =
            static_cast<double>(vx.prefix_length + result.suffix_length);
        if (vx.node == kInvalidNode) {
          found.suffix.assign(result.suffix.begin(), result.suffix.end());
        } else {
          found.suffix.assign(result.suffix.begin() + 1,
                              result.suffix.end());
        }
        if (entry.key >= 0 && std::isfinite(entry.key)) {
          res.stats.algo.lb_tightness_num +=
              static_cast<uint64_t>(std::llround(entry.key));
          res.stats.algo.lb_tightness_den +=
              static_cast<uint64_t>(std::llround(found.key));
        }
        ++res.stats.algo.candidates_generated;
        queue.Push(std::move(found));
        break;
      }
      case SearchOutcome::kBounded: {
        KPJ_DCHECK(std::isfinite(tau));
        ++res.stats.algo.iter_bound_rounds;
        SubspaceEntry bounded;
        bounded.vertex = entry.vertex;
        bounded.key = tau;
        queue.Push(std::move(bounded));
        break;
      }
      case SearchOutcome::kEmpty:
        ++res.stats.algo.candidates_pruned;
        break;
    }
  }

  res.stats.nodes_settled += spti_.stats().nodes_settled;
  res.stats.edges_relaxed += spti_.stats().edges_relaxed;
  res.stats.spt_nodes = spti_.num_settled();
  spti_.SetAlgoStats(nullptr);
  if (cancel_ != nullptr && cancel_->ShouldStop() &&
      res.paths.size() < query.k) {
    res.status = cancel_->CancelStatus();
  }
  return res;
}

}  // namespace kpj
