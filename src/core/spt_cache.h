#ifndef KPJ_CORE_SPT_CACHE_H_
#define KPJ_CORE_SPT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "index/distance_oracle.h"
#include "sssp/incremental_search.h"
#include "sssp/spt.h"
#include "util/types.h"

namespace kpj {

class TargetBoundCache;

/// What kind of shortest-path substrate an SptCache entry holds. Each kind
/// corresponds to one solver integration point; all four store values that
/// are pure functions of the key, so adopting a cached value is
/// byte-identical to recomputing it:
///  * kReverseTargetSpt — DA-SPT's full reverse SPT from V_T (SptResult).
///  * kReverseSptp      — SPT_P state right after the reverse search
///                        settled the query source (SearchSnapshot).
///  * kForwardSpti      — SPT_I state at the end of phase 1, when the
///                        first target was settled (SearchSnapshot). The
///                        grown tree of the main loop is deliberately NOT
///                        cached: a warm superset tree changes lower
///                        bounds and hence tie-breaking, which would break
///                        the byte-identical guarantee.
///  * kRootPath         — the initial shortest path of the best-first
///                        framework (DA / IterBound).
enum class SptCacheKind : uint8_t {
  kReverseTargetSpt = 0,
  kForwardSpti = 1,
  kReverseSptp = 2,
  kRootPath = 3,
};

/// Cache key: everything the cached computation depends on. `epoch` is the
/// owning KpjInstance's mutation epoch (bumped by AttachLandmarks /
/// AttachCategories), so any index change invalidates every older entry.
/// `config` packs the heuristic configuration (landmark availability and
/// max_active_landmarks) because heuristic values reach the stored heap
/// keys. `targets` is the canonical (sorted, deduplicated) target list of
/// the prepared query. Equality is exact — hashing only picks the shard
/// and bucket, so collisions cannot cross-contaminate results.
struct SptCacheKey {
  SptCacheKind kind = SptCacheKind::kReverseTargetSpt;
  uint64_t epoch = 0;
  NodeId source = kInvalidNode;
  uint32_t config = 0;
  std::vector<NodeId> targets;

  bool operator==(const SptCacheKey&) const = default;
  size_t Hash() const;
  size_t MemoryBytes() const {
    return sizeof(SptCacheKey) + targets.capacity() * sizeof(NodeId);
  }
};

/// Packs the heuristic configuration bits of a cache key. The oracle kind
/// participates so cached heap state (whose keys embed heuristic values)
/// never crosses oracles; without an oracle the kind bits are forced to 0
/// so the no-oracle config stays identical to the pre-oracle layout.
inline uint32_t SptCacheConfig(bool use_oracle, uint32_t max_active,
                               OracleKind kind = OracleKind::kAlt) {
  return (use_oracle ? 1u : 0u) |
         (use_oracle ? static_cast<uint32_t>(kind) << 1 : 0u) |
         (max_active << 3);
}

/// Cached initial shortest path of the best-first framework: the suffix
/// nodes strictly after the source, its length, and whether a path exists
/// at all (unreachable target sets are cacheable too).
struct CachedRootPath {
  bool found = false;
  std::vector<NodeId> suffix;
  PathLength suffix_length = 0;

  size_t MemoryBytes() const {
    return sizeof(CachedRootPath) + suffix.capacity() * sizeof(NodeId);
  }
};

/// One cached value; exactly the field matching the key's kind is set.
/// Values sit behind shared_ptr so eviction is safe while a worker still
/// holds (or has adopted) the data.
struct SptCacheValue {
  std::shared_ptr<const SptResult> full_spt;            // kReverseTargetSpt
  std::shared_ptr<const SearchSnapshot> snapshot;       // kForwardSpti/Sptp
  std::shared_ptr<const std::vector<NodeId>> settled_targets;  // kForwardSpti
  std::shared_ptr<const CachedRootPath> root_path;      // kRootPath

  size_t MemoryBytes() const;
};

/// Monotonic operation counters plus the current byte footprint.
struct SptCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  size_t bytes = 0;
  size_t entries = 0;
};

/// Sharded LRU cache of shortest-path substrate, shared by all workers of
/// a KpjEngine. Thread-safe; each shard has its own mutex, LRU list and
/// byte budget (total budget / shard count). Epoch invalidation is lazy —
/// an entry with a stale epoch can never be looked up (the epoch is part
/// of the key) — plus eager via PurgeOlderEpochs.
///
/// Lookup returns a *copy* of the stored value, so the snapshot a query
/// adopts is private to that query: once copied into solver state it may
/// be read concurrently by every intra-query deviation lane (core/intra.h)
/// without touching cache synchronization, and a concurrent eviction or
/// insert on the shard cannot invalidate it.
class SptCache {
 public:
  explicit SptCache(size_t budget_bytes);

  SptCache(const SptCache&) = delete;
  SptCache& operator=(const SptCache&) = delete;

  /// Returns the cached value and refreshes its LRU position, or nullopt.
  /// Counts a hit or a miss.
  std::optional<SptCacheValue> Lookup(const SptCacheKey& key);

  /// True when `key` is resident, with no side effects: no LRU refresh, no
  /// hit/miss counting. A planner probe, not an access — a later Lookup by
  /// the chosen solver observes exactly the counters and recency order it
  /// would have seen had the probe never happened.
  bool Contains(const SptCacheKey& key) const;

  /// Inserts or replaces. Evicts least-recently-used entries of the shard
  /// while it exceeds its byte budget. The just-inserted entry is never
  /// evicted by its own insert: a single oversized entry stays resident
  /// (and useful) until a later insert displaces it.
  void Insert(SptCacheKey key, SptCacheValue value);

  /// Eagerly removes every entry whose key epoch is older than
  /// `current_epoch`. Removed entries count as evictions.
  void PurgeOlderEpochs(uint64_t current_epoch);

  SptCacheStats StatsSnapshot() const;

  /// Zeroes the operation counters (bytes/entries reflect live contents
  /// and are not reset).
  void ResetStats();

  size_t budget_bytes() const { return budget_bytes_; }

 private:
  static constexpr size_t kNumShards = 8;

  struct KeyHash {
    size_t operator()(const SptCacheKey& key) const { return key.Hash(); }
  };

  using LruList = std::list<std::pair<SptCacheKey, SptCacheValue>>;

  struct Shard {
    mutable std::mutex mu;
    LruList lru;  // front = most recently used
    std::unordered_map<SptCacheKey, LruList::iterator, KeyHash> index;
    size_t bytes = 0;
  };

  static size_t EntryBytes(const SptCacheKey& key, const SptCacheValue& value);

  Shard& ShardFor(const SptCacheKey& key);

  size_t budget_bytes_;
  size_t shard_budget_;
  Shard shards_[kNumShards];
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
};

/// Per-query view of the engine's caches, threaded to solvers through
/// PreparedQuery. All pointers may be null (caching disabled); `epoch` is
/// the owning instance's mutation epoch at query time.
struct QueryCacheContext {
  SptCache* spt = nullptr;
  TargetBoundCache* bounds = nullptr;
  uint64_t epoch = 0;
  /// Insert policy for SPT_P's reverse-search snapshot (kReverseSptp).
  /// The engine clears this for algorithms whose measured cache-hit
  /// benefit is negative — exporting SPT_P's snapshot costs more than a
  /// later hit saves (BENCH_cache.json: 0.98x) — so the solver skips the
  /// export+insert and counts AlgoStats::spt_cache_insert_skips instead.
  /// Lookups are unaffected: already-resident entries still serve hits.
  bool allow_sptp_insert = true;
};

}  // namespace kpj

#endif  // KPJ_CORE_SPT_CACHE_H_
