#ifndef KPJ_CORE_HEURISTICS_H_
#define KPJ_CORE_HEURISTICS_H_

#include "sssp/astar.h"
#include "sssp/incremental_search.h"
#include "sssp/spt.h"
#include "util/types.h"

namespace kpj {

/// Exact distance-to-destination heuristic backed by DA-SPT's full online
/// shortest path tree (§3): dist[u] is the exact unconstrained distance
/// from u to the destination set, which is an admissible (and maximally
/// informed) bound inside any subspace.
class FullSptBound final : public Heuristic {
 public:
  /// `spt` must outlive this object; dist is indexed by node id.
  explicit FullSptBound(const SptResult* spt) : spt_(spt) {}

  PathLength Estimate(NodeId u) const override {
    if (u >= spt_->dist.size()) return 0;  // Virtual node.
    return spt_->dist[u];  // kInfLength marks proven unreachability.
  }

 private:
  const SptResult* spt_;
};

/// SPT_P-augmented bound (§5.2): exact distance for nodes inside the
/// partial shortest path tree, fallback bound (Eq. (2) landmarks, or zero)
/// elsewhere. "We give SPT_P a higher priority, because ... the lower bound
/// computed using SPT_P is guaranteed to be not smaller."
class SptpBound final : public Heuristic {
 public:
  /// `sptp` is the reverse-graph incremental search whose settled set is
  /// the partial SPT; `fallback` supplies bounds outside it. Both must
  /// outlive this object.
  SptpBound(const IncrementalSearch* sptp, const Heuristic* fallback)
      : sptp_(sptp), fallback_(fallback) {}

  PathLength Estimate(NodeId u) const override {
    if (sptp_->Settled(u)) return sptp_->Distance(u);
    return fallback_->Estimate(u);
  }

 private:
  const IncrementalSearch* sptp_;
  const Heuristic* fallback_;
};

/// Source-distance bound for the reverse-oriented SPT_I search (§5.3):
/// ds(v) from the forward incremental tree is the exact distance from the
/// source to v, hence an admissible bound on the remaining reverse-search
/// distance v -> source. Outside the tree the fallback applies (only
/// reachable from CompLB-SPT_I; TestLB-SPT_I never visits such nodes).
class SptiSourceBound final : public Heuristic {
 public:
  SptiSourceBound(const IncrementalSearch* spti, const Heuristic* fallback)
      : spti_(spti), fallback_(fallback) {}

  PathLength Estimate(NodeId u) const override {
    if (spti_->Settled(u)) return spti_->Distance(u);
    return fallback_->Estimate(u);
  }

 private:
  const IncrementalSearch* spti_;
  const Heuristic* fallback_;
};

}  // namespace kpj

#endif  // KPJ_CORE_HEURISTICS_H_
