#include "core/sptp.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/spt_cache.h"

namespace kpj {

IterBoundSptpSolver::IterBoundSptpSolver(const Graph& graph,
                                         const Graph& reverse,
                                         const KpjOptions& options)
    : BestFirstFramework(graph, reverse, options,
                         /*iterative_bounding=*/true),
      sptp_(reverse, &zero_) {}

bool IterBoundSptpSolver::InitializeQuery(const PreparedQuery& query,
                                          SubspaceEntry* initial,
                                          QueryStats* stats) {
  SptCache* spt_cache = query.cache != nullptr ? query.cache->spt : nullptr;
  TargetBoundCache* bound_cache =
      query.cache != nullptr ? query.cache->bounds : nullptr;
  const uint64_t epoch = query.cache != nullptr ? query.cache->epoch : 0;

  // Guide PartialSPT (Alg. 6) with lb(s, w): the A* on the reverse graph
  // aims at the source.
  const Heuristic* guide = &zero_;
  if (options_.oracle != nullptr) {
    source_bound_ = MakeCachedSetBound(
        options_.oracle, query.real_sources, BoundDirection::kFromSet,
        query.targets.front(), options_.max_active_landmarks, bound_cache,
        epoch, &stats->algo);
    guide = source_bound_.get();
  }
  sptp_.SetHeuristic(guide);
  sptp_.SetCancelToken(query.cancel);

  // Cross-query reuse: the post-initialization SPT_P (state right after the
  // source settled) is a pure function of (targets, source, heuristic
  // config), so a warm restore reproduces the cold state bit-for-bit and
  // the AdvanceUntilSettled below early-returns.
  SptCacheKey key;
  bool restored = false;
  if (spt_cache != nullptr) {
    key.kind = SptCacheKind::kReverseSptp;
    key.epoch = epoch;
    key.source = query.source;
    key.config = SptCacheConfig(
        options_.oracle != nullptr, options_.max_active_landmarks,
        options_.oracle != nullptr ? options_.oracle->kind()
                                   : OracleKind::kAlt);
    key.targets = query.targets;
    if (std::optional<SptCacheValue> hit = spt_cache->Lookup(key)) {
      sptp_.RestoreSnapshot(*hit->snapshot);
      ++stats->algo.spt_cache_hits;
      restored = true;
    } else {
      ++stats->algo.spt_cache_misses;
    }
  }
  sptp_.SetAlgoStats(&stats->algo);
  if (!restored) {
    std::vector<std::pair<NodeId, PathLength>> seeds;
    seeds.reserve(query.targets.size());
    for (NodeId t : query.targets) seeds.emplace_back(t, 0);
    sptp_.Initialize(seeds);
  }
  bool reached = sptp_.AdvanceUntilSettled(query.source);
  sptp_.SetAlgoStats(nullptr);  // stats points at caller stack storage.
  stats->nodes_settled += sptp_.stats().nodes_settled;
  stats->edges_relaxed += sptp_.stats().edges_relaxed;
  stats->spt_nodes = sptp_.num_settled();
  // This initial computation answers the first shortest path; it is not a
  // separate CompSP (the SPT_P comes "without any extra cost").
  ++stats->shortest_path_computations;
  if (!restored && spt_cache != nullptr && reached &&
      (query.cancel == nullptr || !query.cancel->ShouldStop())) {
    if (query.cache->allow_sptp_insert) {
      auto snap = std::make_shared<SearchSnapshot>();
      sptp_.ExportSnapshot(snap.get());
      SptCacheValue value;
      value.snapshot = std::move(snap);
      spt_cache->Insert(std::move(key), std::move(value));
    } else {
      // The engine measured SPT_P's hit benefit as negative: the snapshot
      // export here costs more than a later restore saves, so skip it.
      ++stats->algo.spt_cache_insert_skips;
    }
  }
  if (!reached) return false;

  // lb(v, V_T): exact inside SPT_P, the oracle's Eq. (2) bound outside
  // (§5.2).
  if (options_.oracle != nullptr) {
    oracle_bound_ = MakeCachedSetBound(
        options_.oracle, query.targets, BoundDirection::kToSet, query.source,
        options_.max_active_landmarks, bound_cache, epoch, &stats->algo);
    sptp_bound_.emplace(&sptp_, oracle_bound_.get());
  } else {
    sptp_bound_.emplace(&sptp_, &zero_);
  }
  heuristic_ = &*sptp_bound_;

  // The reverse-graph tree path from a target root down to the source is
  // the forward shortest path read backwards.
  std::vector<NodeId> rooted = sptp_.PathTo(query.source);
  KPJ_CHECK(!rooted.empty());
  std::reverse(rooted.begin(), rooted.end());
  KPJ_DCHECK(rooted.front() == query.source);

  initial->vertex = tree_.root();
  initial->has_path = true;
  initial->suffix_length = sptp_.Distance(query.source);
  initial->key = static_cast<double>(initial->suffix_length);
  initial->suffix.assign(rooted.begin() + 1, rooted.end());
  return true;
}

}  // namespace kpj
