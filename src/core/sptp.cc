#include "core/sptp.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace kpj {

IterBoundSptpSolver::IterBoundSptpSolver(const Graph& graph,
                                         const Graph& reverse,
                                         const KpjOptions& options)
    : BestFirstFramework(graph, reverse, options,
                         /*iterative_bounding=*/true),
      sptp_(reverse, &zero_) {}

bool IterBoundSptpSolver::InitializeQuery(const PreparedQuery& query,
                                          SubspaceEntry* initial,
                                          QueryStats* stats) {
  // Guide PartialSPT (Alg. 6) with lb(s, w): the A* on the reverse graph
  // aims at the source.
  const Heuristic* guide = &zero_;
  if (options_.landmarks != nullptr) {
    source_bound_.emplace(options_.landmarks, query.real_sources,
                          BoundDirection::kFromSet, query.targets.front(),
                          options_.max_active_landmarks);
    guide = &*source_bound_;
  }
  sptp_.SetHeuristic(guide);
  sptp_.SetCancelToken(query.cancel);

  std::vector<std::pair<NodeId, PathLength>> seeds;
  seeds.reserve(query.targets.size());
  for (NodeId t : query.targets) seeds.emplace_back(t, 0);
  sptp_.SetAlgoStats(&stats->algo);
  sptp_.Initialize(seeds);
  bool reached = sptp_.AdvanceUntilSettled(query.source);
  sptp_.SetAlgoStats(nullptr);  // stats points at caller stack storage.
  stats->nodes_settled += sptp_.stats().nodes_settled;
  stats->edges_relaxed += sptp_.stats().edges_relaxed;
  stats->spt_nodes = sptp_.num_settled();
  // This initial computation answers the first shortest path; it is not a
  // separate CompSP (the SPT_P comes "without any extra cost").
  ++stats->shortest_path_computations;
  if (!reached) return false;

  // lb(v, V_T): exact inside SPT_P, Eq. (2) landmarks outside (§5.2).
  if (options_.landmarks != nullptr) {
    landmark_bound_.emplace(options_.landmarks, query.targets,
                            BoundDirection::kToSet, query.source,
                            options_.max_active_landmarks);
    sptp_bound_.emplace(&sptp_, &*landmark_bound_);
  } else {
    sptp_bound_.emplace(&sptp_, &zero_);
  }
  heuristic_ = &*sptp_bound_;

  // The reverse-graph tree path from a target root down to the source is
  // the forward shortest path read backwards.
  std::vector<NodeId> rooted = sptp_.PathTo(query.source);
  KPJ_CHECK(!rooted.empty());
  std::reverse(rooted.begin(), rooted.end());
  KPJ_DCHECK(rooted.front() == query.source);

  initial->vertex = tree_.root();
  initial->has_path = true;
  initial->suffix_length = sptp_.Distance(query.source);
  initial->key = static_cast<double>(initial->suffix_length);
  initial->suffix.assign(rooted.begin() + 1, rooted.end());
  return true;
}

}  // namespace kpj
