#ifndef KPJ_CORE_PSEUDO_TREE_H_
#define KPJ_CORE_PSEUDO_TREE_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/epoch_array.h"
#include "util/small_vec.h"
#include "util/types.h"

namespace kpj {

/// Trie-like pseudo-tree of chosen paths (paper §3) — the shared backbone
/// of the deviation baselines AND the best-first/iteratively-bounding
/// approaches: the paper's subspaces ⟨P_{s,u}, X_u⟩ (Def. 4.1) are in
/// one-to-one correspondence with its vertices (proof of Lemma 4.1).
///
/// A vertex stores its graph node, parent vertex, prefix length, and the
/// subspace's excluded-edge set X_u as a list of banned next-hop nodes. A
/// node of the graph may appear in many vertices (hence "pseudo"). For KPJ
/// the destination is a *set*, so a chosen path may be extended through its
/// own destination toward another target; the `finish_banned` flag plays
/// the role of the banned virtual edge (u, t) of the paper's reduction.
///
/// The same structure serves the reverse-oriented IterBound-SPT_I search
/// (§5.3): there the root is the virtual destination t (node ==
/// kInvalidNode) and edges are reverse-graph arcs.
class PseudoTree {
 public:
  static constexpr uint32_t kNoVertex = UINT32_MAX;

  struct Vertex {
    /// Graph node, or kInvalidNode for a virtual root.
    NodeId node = kInvalidNode;
    uint32_t parent = kNoVertex;
    /// Length of the tree path from the root to this vertex.
    PathLength prefix_length = 0;
    /// Banned next-hop nodes (the subspace's X_u, stored by target node).
    /// Small-vector backed: one division bans one hop, so most lists hold
    /// a handful of entries.
    SmallVec<NodeId, 4> banned;
    /// If true, paths of this subspace may pass through but not *end* at
    /// this vertex's node (the banned virtual edge (u, t)).
    bool finish_banned = false;
  };

  /// Clears the tree and creates vertex 0 rooted at `root_node`
  /// (kInvalidNode for the virtual destination of the reverse search).
  void Reset(NodeId root_node);

  uint32_t root() const { return 0; }
  size_t size() const { return vertices_.size(); }

  const Vertex& vertex(uint32_t v) const {
    KPJ_DCHECK(v < vertices_.size());
    return vertices_[v];
  }

  /// Appends a child of `parent` reached via an edge of weight `weight`.
  uint32_t AddChild(uint32_t parent, NodeId node, Weight weight);

  /// Adds `hop` to X_u of vertex `v`.
  void BanHop(uint32_t v, NodeId hop);

  /// Forbids paths of v's subspace from ending at v's node.
  void BanFinish(uint32_t v) {
    KPJ_DCHECK(v < vertices_.size());
    vertices_[v].finish_banned = true;
  }

  /// Marks the graph nodes on the root→v tree path (inclusive, skipping a
  /// virtual root) into `forbidden`. O(depth). The caller owns clearing.
  void MarkPrefix(uint32_t v, EpochSet* forbidden) const;

  /// Appends the graph nodes of the root→v path (skipping a virtual root)
  /// to `out`, in root-first order. O(depth). Works with any push_back-able
  /// contiguous container (std::vector, PathNodes).
  template <typename Container>
  void GetPrefixNodes(uint32_t v, Container* out) const {
    size_t first = out->size();
    for (uint32_t cur = v; cur != kNoVertex; cur = vertices_[cur].parent) {
      if (vertices_[cur].node != kInvalidNode) {
        out->push_back(vertices_[cur].node);
      }
    }
    std::reverse(out->begin() + first, out->end());
  }

 private:
  std::vector<Vertex> vertices_;
};

/// Vertices whose subspaces changed in a division: `revised` is the popped
/// vertex with a newly banned hop (or finish), `created` are fresh
/// vertices along the chosen path's suffix. Together they are the l+1
/// subspaces of the paper's §4.1 (minus the singleton {P}).
struct DivisionResult {
  uint32_t revised = PseudoTree::kNoVertex;
  std::vector<uint32_t> created;
};

/// Divides the subspace of vertex `u` after its shortest path was chosen
/// (Alg. 2 lines 7-10). `suffix` holds the path's nodes strictly after
/// u's node (so the full path is prefix(u) + suffix). `graph` supplies
/// deviation-edge weights; for a virtual root the first hop has weight 0.
///
/// If `create_destination_vertex` is true (forward KPJ orientation, where
/// other targets may lie beyond this path's destination), the suffix's
/// last node also becomes a vertex with `finish_banned` set; the reverse
/// orientation passes false because its destination is a single node.
DivisionResult DivideSubspace(PseudoTree& tree, const Graph& graph,
                              uint32_t u, std::span<const NodeId> suffix,
                              bool create_destination_vertex);

}  // namespace kpj

#endif  // KPJ_CORE_PSEUDO_TREE_H_
