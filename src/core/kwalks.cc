#include "core/kwalks.h"

#include <algorithm>
#include <queue>
#include <unordered_set>

#include "util/indexed_heap.h"
#include "util/logging.h"

namespace kpj {
namespace {

/// One settled label: the arena of pops forms the walk tree.
struct Label {
  PathLength dist;
  NodeId node;
  uint32_t parent;  // Index into the arena; UINT32_MAX for roots.
};

struct HeapEntry {
  PathLength dist;
  NodeId node;
  uint32_t parent;
};

struct HeapLater {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    return a.dist > b.dist;
  }
};

}  // namespace

Result<std::vector<Path>> TopKShortestWalks(const Graph& graph,
                                            const KpjQuery& query) {
  if (query.k == 0) return Status::InvalidArgument("k must be positive");
  if (query.sources.empty() || query.targets.empty()) {
    return Status::InvalidArgument("walk query needs sources and targets");
  }
  for (NodeId v : query.sources) {
    if (v >= graph.NumNodes()) {
      return Status::InvalidArgument("source out of range");
    }
  }
  std::vector<bool> is_target(graph.NumNodes(), false);
  std::unordered_set<NodeId> sources(query.sources.begin(),
                                     query.sources.end());
  for (NodeId v : query.targets) {
    if (v >= graph.NumNodes()) {
      return Status::InvalidArgument("target out of range");
    }
    is_target[v] = true;
  }

  std::vector<uint32_t> pops(graph.NumNodes(), 0);
  std::vector<Label> arena;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapLater> heap;
  for (NodeId s : sources) heap.push(HeapEntry{0, s, UINT32_MAX});

  std::vector<Path> results;
  while (!heap.empty() && results.size() < query.k) {
    HeapEntry top = heap.top();
    heap.pop();
    if (pops[top.node] >= query.k) continue;  // Enough labels for this node.
    ++pops[top.node];
    arena.push_back(Label{top.dist, top.node, top.parent});
    uint32_t label_index = static_cast<uint32_t>(arena.size() - 1);

    // Walks must have at least one edge, mirroring the simple-path
    // semantics (a source inside the target set yields no trivial walk).
    if (is_target[top.node] && top.parent != UINT32_MAX) {
      Path walk;
      walk.length = top.dist;
      for (uint32_t cur = label_index; cur != UINT32_MAX;
           cur = arena[cur].parent) {
        walk.nodes.push_back(arena[cur].node);
      }
      std::reverse(walk.nodes.begin(), walk.nodes.end());
      results.push_back(std::move(walk));
      if (results.size() == query.k) break;
    }

    for (const OutEdge& e : graph.OutEdges(top.node)) {
      if (pops[e.to] >= query.k) continue;
      heap.push(HeapEntry{top.dist + e.weight, e.to, label_index});
    }
  }
  return results;
}

}  // namespace kpj
