#include "core/da_spt.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/spt_cache.h"

namespace kpj {

DaSptSolver::DaSptSolver(const Graph& graph, const Graph& reverse,
                         const KpjOptions& options)
    : graph_(graph),
      reverse_(reverse),
      search_(graph),
      reverse_dijkstra_(reverse) {
  (void)options;  // DA-SPT uses neither landmarks nor alpha.
}

bool DaSptSolver::TryConcatenation(uint32_t v, ConstrainedSearch& cs,
                                   SubspaceEntry* entry, QueryStats* stats) {
  const PseudoTree::Vertex& vx = tree_.vertex(v);
  // Prefix nodes are already marked in cs.forbidden() by the caller.
  const EpochSet& forbidden = cs.forbidden();

  // Find the deviation edge minimizing weight + exact SPT distance.
  NodeId best_hop = kInvalidNode;
  PathLength best_estimate = kInfLength;
  for (const OutEdge& e : graph_.OutEdges(vx.node)) {
    if (forbidden.Contains(e.to)) continue;
    bool banned = false;
    for (NodeId b : vx.banned) {
      if (b == e.to) {
        banned = true;
        break;
      }
    }
    if (banned) continue;
    PathLength est = SatAdd(e.weight, full_spt_->dist[e.to]);
    if (est < best_estimate) {
      best_estimate = est;
      best_hop = e.to;
    }
  }
  if (best_hop == kInvalidNode || best_estimate == kInfLength) {
    // No finite deviation: either the subspace is empty or only the
    // zero-length suffix remains; let the general search decide.
    return false;
  }

  // Pascoal's test: the SPT path from best_hop must avoid prefix nodes
  // (it is itself simple, so this suffices for whole-path simplicity).
  SmallVec<NodeId, 8> suffix;
  suffix.push_back(best_hop);
  for (NodeId cur = best_hop;;) {
    // The walk is O(|path|) but paths can span most of a road network;
    // poll so a deadline cannot be overshot by a full concatenation. A
    // cancelled candidate falls back to the general search, which bails
    // on its first heap pop — the caller's loop then stops either way.
    if (cancel_ != nullptr && cancel_->ShouldStop()) return false;
    NodeId parent = full_spt_->parent[cur];
    if (parent == kInvalidNode) break;
    if (forbidden.Contains(parent)) return false;  // Not simple: fall back.
    suffix.push_back(parent);
    cur = parent;
  }

  ++stats->algo.candidates_generated;
  entry->vertex = v;
  entry->has_path = true;
  entry->suffix_length = best_estimate;
  entry->key = static_cast<double>(vx.prefix_length + best_estimate);
  entry->suffix = std::move(suffix);
  // Not counted in shortest_path_computations: the whole point of the
  // concatenation test is to avoid a shortest-path run.
  return true;
}

bool DaSptSolver::ComputeCandidate(uint32_t v, ConstrainedSearch& cs,
                                   SubspaceEntry* entry, QueryStats* stats) {
  const PseudoTree::Vertex& vx = tree_.vertex(v);
  cs.ClearForbidden();
  tree_.MarkPrefix(v, &cs.forbidden());
  ++stats->subspaces_created;

  // The zero-length suffix (prefix already ends at a target and finishing
  // is allowed) beats every deviation, so check it first.
  bool zero_suffix_ok =
      !vx.finish_banned && cs.target_set().Contains(vx.node);
  if (!zero_suffix_ok && TryConcatenation(v, cs, entry, stats)) return true;

  SubspaceSearchRequest request;
  request.start = vx.node;
  request.prefix_length = vx.prefix_length;
  request.banned_first_hops = vx.banned;
  request.start_counts_as_destination = zero_suffix_ok;
  request.cancel = cancel_;

  FullSptBound bound(full_spt_.get());
  ++stats->shortest_path_computations;
  SubspaceSearchResult result = cs.Run(request, bound, stats);
  if (result.outcome != SearchOutcome::kFound) {
    ++stats->algo.candidates_pruned;
    return false;
  }

  ++stats->algo.candidates_generated;
  entry->vertex = v;
  entry->has_path = true;
  entry->suffix_length = result.suffix_length;
  entry->key = static_cast<double>(vx.prefix_length + result.suffix_length);
  entry->suffix.assign(result.suffix.begin() + 1, result.suffix.end());
  return true;
}

void DaSptSolver::PushCandidate(uint32_t v, SubspaceQueue& queue,
                                QueryStats* stats) {
  SubspaceEntry entry;
  if (ComputeCandidate(v, search_, &entry, stats)) {
    queue.Push(std::move(entry));
  }
}

void DaSptSolver::ExpandDivision(const DivisionResult& division,
                                 SubspaceQueue& queue, QueryStats* stats) {
  std::vector<uint32_t> slots;
  slots.reserve(1 + division.created.size());
  slots.push_back(division.revised);
  slots.insert(slots.end(), division.created.begin(),
               division.created.end());

  struct Slot {
    SubspaceEntry entry;
    QueryStats stats;
    bool found = false;
  };
  std::vector<Slot> results(slots.size());
  RunDeviationRound(
      intra_, slots.size(), &stats->algo, [&](size_t i, unsigned lane) {
        ConstrainedSearch& cs =
            lane == 0 ? search_ : *lane_search_[lane - 1];
        results[i].found =
            ComputeCandidate(slots[i], cs, &results[i].entry,
                             &results[i].stats);
      });
  for (Slot& r : results) {
    stats->Accumulate(r.stats);
    if (r.found) queue.Push(std::move(r.entry));
  }
}

KpjResult DaSptSolver::Run(const PreparedQuery& query) {
  KpjResult res;
  cancel_ = query.cancel;
  intra_ = query.intra;
  tree_.Reset(query.source);
  search_.SetTargets(query.targets);
  for (unsigned lane = 1; lane < IntraLanes(intra_); ++lane) {
    if (lane_search_.size() < lane) {
      lane_search_.push_back(std::make_unique<ConstrainedSearch>(graph_));
    }
    lane_search_[lane - 1]->SetTargets(query.targets);
  }

  // Build the full SPT toward the (virtual) destination: one multi-source
  // Dijkstra on the reverse graph over all of V_T. This is DA-SPT's
  // up-front cost (paper §3, deficiency 3) — and the payoff of the
  // cross-query cache: the SPT depends only on the target set, so every
  // query against the same category reuses it.
  SptCache* cache = query.cache != nullptr ? query.cache->spt : nullptr;
  SptCacheKey key;
  if (cache != nullptr) {
    key.kind = SptCacheKind::kReverseTargetSpt;
    key.epoch = query.cache->epoch;
    key.targets = query.targets;
  }
  full_spt_.reset();
  if (cache != nullptr) {
    if (std::optional<SptCacheValue> hit = cache->Lookup(key)) {
      full_spt_ = hit->full_spt;
      ++res.stats.algo.spt_cache_hits;
      // spt_nodes stays 0: stats report work actually performed.
    } else {
      ++res.stats.algo.spt_cache_misses;
    }
  }
  if (full_spt_ == nullptr) {
    std::vector<std::pair<NodeId, PathLength>> seeds;
    seeds.reserve(query.targets.size());
    for (NodeId t : query.targets) seeds.emplace_back(t, 0);
    reverse_dijkstra_.SetCancelToken(cancel_);
    reverse_dijkstra_.SetAlgoStats(&res.stats.algo);
    reverse_dijkstra_.RunMultiSource(seeds);
    reverse_dijkstra_.SetAlgoStats(nullptr);  // res is stack storage.
    res.stats.nodes_settled += reverse_dijkstra_.stats().nodes_settled;
    res.stats.edges_relaxed += reverse_dijkstra_.stats().edges_relaxed;
    res.stats.spt_nodes = reverse_dijkstra_.stats().nodes_settled;
    if (cancel_ != nullptr && cancel_->ShouldStop()) {
      // A truncated SPT has unusable distances; stop before any candidate
      // and never cache it.
      res.status = cancel_->CancelStatus();
      return res;
    }
    full_spt_ =
        std::make_shared<const SptResult>(reverse_dijkstra_.Snapshot());
    if (cache != nullptr) {
      SptCacheValue value;
      value.full_spt = full_spt_;
      cache->Insert(std::move(key), std::move(value));
    }
  }

  SubspaceQueue queue;
  PushCandidate(tree_.root(), queue, &res.stats);
  res.stats.subspaces_created = 0;

  while (res.paths.size() < query.k && !queue.empty()) {
    if (cancel_ != nullptr && cancel_->ShouldStop()) break;
    res.stats.max_queue_size =
        std::max<uint64_t>(res.stats.max_queue_size, queue.size());
    SubspaceEntry entry = queue.Pop();
    res.paths.push_back(AssemblePath(tree_, entry, /*reverse_oriented=*/false));

    if (res.paths.size() == query.k) break;
    DivisionResult division = DivideSubspace(
        tree_, graph_, entry.vertex, entry.suffix,
        /*create_destination_vertex=*/true);
    ExpandDivision(division, queue, &res.stats);
  }
  if (cancel_ != nullptr && cancel_->ShouldStop() &&
      res.paths.size() < query.k) {
    res.status = cancel_->CancelStatus();
  }
  return res;
}

}  // namespace kpj
