#ifndef KPJ_CORE_KPJ_INSTANCE_H_
#define KPJ_CORE_KPJ_INSTANCE_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "core/kpj.h"
#include "core/kpj_query.h"
#include "core/solver.h"
#include "graph/graph.h"
#include "graph/reorder.h"
#include "index/category_index.h"
#include "index/hub_label_index.h"
#include "index/landmark_index.h"
#include "util/cancellation.h"
#include "util/mmap_file.h"
#include "util/status.h"

namespace kpj {

/// The unified query-serving handle: one immutable bundle of everything a
/// KPJ query needs — the graph (in its cache-optimized internal layout),
/// its reverse, the permutation connecting internal ids to the caller's
/// original ids, and the optional offline indexes (landmarks, categories).
///
/// This replaces the loose `(graph, reverse, options)` triples and the
/// ReorderedGraph-vs-raw-graph overload split of the old facade: build one
/// KpjInstance, then pass it to MakeSolver / PrepareQuery / RunKpj /
/// RunKsp / MakeCategoryQuery and to KpjEngine. All of those speak
/// *original* ids at the boundary; translation happens inside.
///
/// Id spaces of the attachments:
///  * the LandmarkIndex must be in the *internal* layout (build it on
///    `graph()`, or Remap an existing index with `permutation()`) — solvers
///    consult it in that space; AttachLandmarks validates the node count.
///  * the CategoryIndex stays in *original* ids (it is a user-boundary
///    artifact; MakeCategoryQuery output feeds RunKpj, which translates).
///
/// Solvers and engines keep references into the instance, so it must
/// outlive them and must not be moved once any solver exists.
class KpjInstance {
 public:
  /// Relabels `graph` with `strategy` (kNone keeps the identity layout),
  /// builds the reverse graph, and wraps the result. Fails on an empty
  /// graph.
  static Result<KpjInstance> Make(Graph graph,
                                  ReorderStrategy strategy =
                                      ReorderStrategy::kNone);

  /// Wraps an already-relabeled graph (e.g. loaded from a version-2 binary
  /// file) without recomputing anything. `permutation` may be empty
  /// (identity); otherwise its size must match the graph.
  static Result<KpjInstance> Wrap(Graph graph, Permutation permutation);

  /// Opens a version-4 graph file with mmap and builds the instance with
  /// zero array copies: the CSR (forward and the stored reverse), the
  /// permutation, and every index section present in the file are borrowed
  /// straight out of the read-only mapping, which the instance pins for
  /// its lifetime. With `options.verify_checksums` every section is
  /// verified (one sequential pass, no allocation); without it the open is
  /// O(1) — pages fault in lazily as queries touch them, and the kernel
  /// shares them across every process mapping the same file.
  static Result<KpjInstance> LoadMapped(const std::string& path,
                                        const MappedLoadOptions& options = {});

  KpjInstance(KpjInstance&&) = default;
  KpjInstance& operator=(KpjInstance&&) = default;

  /// Attaches the landmark index (internal layout; see class comment).
  /// Fails if its node count does not match the graph.
  Status AttachLandmarks(LandmarkIndex landmarks);

  /// Attaches the hub-label index (internal layout, like the landmarks:
  /// build it on `graph()` or Remap with `permutation()`). Fails if its
  /// node count does not match the graph.
  Status AttachHubLabels(HubLabelIndex labels);

  /// Attaches the category index (original ids; see class comment). Fails
  /// if its node count does not match the graph.
  Status AttachCategories(CategoryIndex categories);

  /// Selects which attached oracle `oracle()` resolves to. Fails when the
  /// requested kind is not attached. Instances start on kAlt (landmarks).
  Status SelectOracle(OracleKind kind);

  const Graph& graph() const { return bundle_.graph; }
  const Graph& reverse() const { return bundle_.reverse; }
  const Permutation& permutation() const { return bundle_.permutation; }
  /// nullptr when not attached.
  const LandmarkIndex* landmarks() const {
    return landmarks_ ? &*landmarks_ : nullptr;
  }
  /// nullptr when not attached.
  const HubLabelIndex* hub_labels() const {
    return hub_labels_ ? &*hub_labels_ : nullptr;
  }
  /// The selected distance oracle (SelectOracle; defaults to kAlt), or
  /// nullptr when the selected kind is not attached.
  const DistanceOracle* oracle() const {
    switch (selected_oracle_) {
      case OracleKind::kAlt:
        return landmarks();
      case OracleKind::kHubLabel:
        return hub_labels();
    }
    return nullptr;
  }
  OracleKind selected_oracle_kind() const { return selected_oracle_; }
  /// nullptr when not attached.
  const CategoryIndex* categories() const {
    return categories_ ? &*categories_ : nullptr;
  }

  /// Mutation epoch: starts at 1 and increments whenever an index is
  /// (re)attached. Cross-query caches key on it, so attaching a new
  /// landmark or category index invalidates every older cache entry.
  uint64_t epoch() const { return epoch_; }

  /// Bytes of the read-only file mapping backing this instance, or 0 when
  /// it owns its arrays on the heap (Make/Wrap).
  uint64_t mapped_bytes() const {
    return mapping_ ? mapping_->mapped_bytes() : 0;
  }

  NodeId NumNodes() const { return bundle_.graph.NumNodes(); }
  NodeId ToInternal(NodeId original) const {
    return bundle_.permutation.ToNew(original);
  }
  NodeId ToOriginal(NodeId internal) const {
    return bundle_.permutation.ToOld(internal);
  }

 private:
  explicit KpjInstance(ReorderedGraph bundle) : bundle_(std::move(bundle)) {}

  ReorderedGraph bundle_;
  /// Pins the file mapping the bundle (and any indexes) borrow from; null
  /// for heap-owned instances.
  std::shared_ptr<const MappedGraphFile> mapping_;
  std::optional<LandmarkIndex> landmarks_;
  std::optional<HubLabelIndex> hub_labels_;
  std::optional<CategoryIndex> categories_;
  OracleKind selected_oracle_ = OracleKind::kAlt;
  uint64_t epoch_ = 1;
};

/// Resolves the options a solver for `instance` actually runs with: when
/// `options.oracle` is null, the instance's selected oracle (if attached)
/// is used. Engines and the facade share this so pooled solvers and
/// one-shot solvers always agree.
KpjOptions ResolveOptions(const KpjInstance& instance,
                          const KpjOptions& options);

/// Constructs the solver selected by `options` bound to the instance's
/// graphs, with landmarks resolved via ResolveOptions. The instance must
/// outlive (and not move under) the solver.
std::unique_ptr<KpjSolver> MakeSolver(const KpjInstance& instance,
                                      const KpjOptions& options);

/// Validates `query` (given in original ids) against the instance and
/// produces the internal-layout single-source view solvers execute. Same
/// rules as the legacy PrepareQuery; additionally translates ids.
Result<PreparedQuery> PrepareQuery(const KpjInstance& instance,
                                   const KpjQuery& query);

/// Core execution routine shared by RunKpj(instance, ...) and KpjEngine:
/// translates `query` into the internal layout, prepares it, runs it, and
/// translates the result paths back to original ids.
///
/// `pooled_solver` may be a reusable solver previously built by
/// MakeSolver(instance, options) — its workspaces are reused without
/// locking (callers guarantee exclusive use for the duration of the call).
/// Pass nullptr to construct an ephemeral solver. GKPJ queries (multiple
/// sources) always run on an ephemeral solver over the augmented graph.
///
/// `cancel` (may be null) is polled by the solver's expansion loops; on a
/// tripped token the returned KpjResult carries the paths proven optimal
/// so far and a kDeadlineExceeded / kCancelled `status`. Validation
/// failures surface as a non-ok Result instead.
///
/// `cache` (may be null) enables cross-query reuse (core/spt_cache.h).
/// It is threaded to single-source solvers only: GKPJ queries run on the
/// augmented super-source graph, whose node space the caches do not
/// describe. Results are byte-identical with or without a cache.
///
/// `intra` (may be null) enables intra-query parallel deviation rounds
/// (core/intra.h); it is threaded to both pooled and GKPJ solvers.
/// Results are byte-identical with or without it.
Result<KpjResult> RunKpjOnInstance(const KpjInstance& instance,
                                   const KpjQuery& query,
                                   const KpjOptions& options,
                                   KpjSolver* pooled_solver,
                                   const CancellationToken* cancel,
                                   const QueryCacheContext* cache = nullptr,
                                   const IntraQueryContext* intra = nullptr);

/// One-shot convenience over RunKpjOnInstance (no pooled solver, no
/// cancellation).
Result<KpjResult> RunKpj(const KpjInstance& instance, const KpjQuery& query,
                         const KpjOptions& options);

/// KSP convenience (paper Def. 3.1): top-k simple shortest paths between
/// two physical nodes — a KPJ query whose category holds one node.
Result<KpjResult> RunKsp(const KpjInstance& instance, NodeId source,
                         NodeId target, uint32_t k, const KpjOptions& options);

/// Builds the KpjQuery for "top-k paths from `source` to category
/// `category`" using the instance's attached category index (original
/// ids). Fails when no index is attached or the category is unknown/empty.
Result<KpjQuery> MakeCategoryQuery(const KpjInstance& instance, NodeId source,
                                   CategoryId category, uint32_t k);

}  // namespace kpj

#endif  // KPJ_CORE_KPJ_INSTANCE_H_
