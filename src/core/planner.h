#ifndef KPJ_CORE_PLANNER_H_
#define KPJ_CORE_PLANNER_H_

#include <array>
#include <cstdint>
#include <iterator>
#include <mutex>
#include <vector>

#include "core/kpj_instance.h"
#include "core/kpj_query.h"
#include "core/spt_cache.h"

namespace kpj {

/// Number of concrete solvers the planner can choose between (the seven
/// paper algorithms; Algorithm::kAuto is the sentinel that engages the
/// planner and is never itself a choice).
inline constexpr size_t kNumPlannableAlgorithms = std::size(kAllAlgorithms);

/// Index of a concrete algorithm into the planner's per-algorithm arrays.
inline constexpr size_t PlannerIndex(Algorithm a) {
  return static_cast<size_t>(a);
}

/// The planner's rolling per-algorithm latency profile plus the rolling
/// lower-bound distance scale. All values are integers (fixed-point ×16)
/// so updates are exact and snapshots byte-stable: the same sequence of
/// RecordLatency calls always yields the same profile.
///
/// `latency_ewma_x16us[i]` is an exponentially weighted moving average of
/// the observed per-query wall time of algorithm i, in microseconds ×16.
/// Before any observation it holds the static prior (BENCH_cache /
/// BENCH_engine orderings: IterBound_I fastest cold, DA slowest), so the
/// cold-path argmin is meaningful from the first query.
struct PlannerProfile {
  std::array<uint64_t, kNumPlannableAlgorithms> latency_ewma_x16us;
  std::array<uint64_t, kNumPlannableAlgorithms> samples;
  /// DA-SPT when its reverse target-SPT is already resident is a different
  /// cost regime from DA-SPT cold (no tree build), so resident-mode samples
  /// feed this separate EWMA. The residency rules compare it against the
  /// best forward algorithm instead of trusting residency unconditionally:
  /// on instances where the forward solvers beat even a resident DA-SPT,
  /// the planner measures that once and stops routing to DA-SPT.
  uint64_t dasp_resident_ewma_x16us = 0;
  uint64_t dasp_resident_samples = 0;
  /// The static priors are *relative* costs — their absolute scale is
  /// arbitrary, and on a large instance real per-query costs can sit two
  /// orders of magnitude above them. This rolling EWMA of
  /// observed_latency / static_prior (fixed-point ×256) re-anchors every
  /// still-unmeasured prior to the instance's real magnitude, so the cold
  /// argmin never has to burn a query on each candidate just to learn the
  /// scale (the naive walk measured ~3.7x of the whole workload's best
  /// fixed time in BENCH_planner).
  uint64_t scale_x256 = 256;
  /// Rolling mean of the oracle lower bound dist(source, V_T) observed at
  /// planning time (PathLength units ×16); drives the distance quintile.
  uint64_t lb_scale_x16 = 0;
  uint64_t lb_samples = 0;

  /// The static prior: relative cold-query cost ordering measured on the
  /// repo's own benches. Absolute values only matter relative to each
  /// other; online samples displace them at 1/8 weight per observation.
  static PlannerProfile StaticPrior();

  bool operator==(const PlannerProfile&) const = default;
};

/// One planning decision: which solver runs this query and why. `reason`
/// is a static string from a fixed vocabulary (wire/log friendly, never
/// owned). `fallback` marks queries the cost model's cache probes cannot
/// help (GKPJ runs on an ephemeral augmented graph the caches do not
/// describe) — exported as kpj_planner_fallback_total.
struct PlannerDecision {
  Algorithm algorithm = Algorithm::kIterBoundSptI;
  const char* reason = "";
  bool fallback = false;
  /// True when the decision adopted a resident reverse target-SPT; the
  /// engine passes it back into RecordLatency so the sample lands in the
  /// resident-mode EWMA rather than the cold one.
  bool resident = false;
  /// Fingerprint of the query's canonical target set (0 when none was
  /// computed — GKPJ or cache-less engines). The engine passes it back
  /// into RecordLatency so the measured latency also lands in the
  /// shape-conditioned recurrence slot.
  uint64_t shape_fp = 0;
};

struct PlannerOptions {
  /// PRNG seed for the epsilon-greedy exploration arm. The sequence is a
  /// pure function of (seed, decision index), so a single-threaded replay
  /// of the same query stream explores at the same points.
  uint64_t seed = 0x9e3779b97f4a7c15ull;
  /// Explore on one decision in `explore_one_in` (epsilon = 1/N); 0
  /// (the default) disables exploration. When enabled, exploration only
  /// picks among candidates whose profiled latency is within 4x of the
  /// best, and only on queries whose features predict a typical cost
  /// (near/middle distance quintile, k below `large_k`). It still defaults
  /// off: per-query costs are heavy-tailed enough that one explore can
  /// cost more than its measurement informs (BENCH_planner), and the
  /// scale-anchored priors already let the greedy argmin self-correct —
  /// an algorithm is re-tried exactly when the incumbent's EWMA drifts
  /// above its estimate.
  uint32_t explore_one_in = 0;
  /// k at or above which DA-SPT's per-deviation enumeration cost dominates
  /// any tree reuse (BENCH_planner: ~19x slower than IterBound_I at k=96
  /// even with the reverse SPT resident). At or above this the residency
  /// and repeat rules never route to DA-SPT, and exploration is disabled.
  uint32_t large_k = 64;
  /// Target-set size at or above which a query is treated as the paper's
  /// category join (all POIs of one category) and routed to DA-SPT on
  /// first sight — the reverse tree it builds is keyed by the category
  /// alone, so the very first query seeds the cache for every source that
  /// follows. Subject to the same profile/k gates as the residency rules.
  uint32_t category_targets = 32;
  /// Pinned mode freezes the profile and the repeat-set table: Plan()
  /// becomes a pure function of the query features, so choices are
  /// identical at any (workers, intra_threads, cache) point. Used by the
  /// determinism tests; RecordLatency becomes a no-op.
  bool pinned = false;
};

/// Per-query algorithm planner behind `--algorithm=auto`.
///
/// The cost model reads only cheap observables — k, |V_T|, the oracle
/// kind, side-effect-free SPT-cache residency probes, the landmark
/// distance quintile of the source, and the rolling per-algorithm latency
/// profile — and never looks at the answer, so the choice can only change
/// *which* solver produces the (byte-identical) paths, never the paths.
///
/// Decision ladder, first match wins:
///  1. GKPJ (multiple sources) → profile-best cold algorithm; counted as
///     a fallback (the caches do not describe the augmented graph).
///  2. Reverse target-SPT resident (DA-SPT's key: targets only) and k
///     below large_k → paired per-shape measurement: run DA-SPT once to
///     measure the resident path, run the best forward algorithm once to
///     measure the alternative, then commit to whichever measured faster
///     *for this target set* (the winner's estimate keeps updating, so
///     the choice can still flip later). Residency is evidence the tree
///     build is paid off, not a verdict: on instances where forward
///     solvers beat even a resident DA-SPT, the pair of measurements
///     routes past the tree.
///  3. Forward SPT_I snapshot resident for this (source, targets) →
///     IterBound_I (the variant matching the oracle config).
///  4. Category-sized target set (|V_T| >= category_targets) or a target
///     set seen repeatedly, no tree resident yet, same k/profile gates as
///     rule 2 → DA-SPT once, deliberately paying the full SPT to seed the
///     cache for the repeats the shape predicts (the paper's join:
///     category target sets recur across sources). The seed's cost lands
///     in the cold DA-SPT EWMA; the repeats it enables land in the
///     resident one.
///  5. Cold → the EWMA argmin of the cold candidate set, optionally
///     epsilon-greedy (1/explore_one_in, off by default; only on
///     typical-cost queries: quintile <= 2, k < large_k, and only among
///     candidates within 4x of the best).
///
/// Thread safety: Plan and RecordLatency are internally synchronized. In
/// live mode concurrent workers may interleave profile updates in timing
/// order (choices can differ run to run; answers cannot); pinned mode is
/// read-only and therefore schedule-independent.
class QueryPlanner {
 public:
  QueryPlanner(const KpjInstance& instance, const KpjOptions& base,
               PlannerOptions options = {});

  /// Picks the solver for `query` (original ids). `cache` may be null
  /// (cache-less engines still get the cost model minus the probes);
  /// `epoch` is the instance mutation epoch the engine stamped into its
  /// QueryCacheContext, so probe keys match solver keys exactly.
  PlannerDecision Plan(const KpjQuery& query, const SptCache* cache,
                       uint64_t epoch);

  /// Feeds one observed per-query wall time into the rolling profile.
  /// `resident` and `shape_fp` come from the PlannerDecision that ran the
  /// query: resident DA-SPT samples update the resident-mode EWMA instead
  /// of the cold one, and a non-zero shape fingerprint additionally files
  /// the sample into that recurrence slot's per-shape estimate (DA-SPT
  /// resident vs forward). No-op in pinned mode.
  void RecordLatency(Algorithm algorithm, bool resident, uint64_t shape_fp,
                     double elapsed_ms);

  PlannerProfile ProfileSnapshot() const;

  /// Replaces the profile and freezes it (sets pinned mode). With a
  /// pinned profile, Plan() is a pure function of the query features.
  void PinProfile(const PlannerProfile& profile);

  const PlannerOptions& options() const { return options_; }

  /// Whether inserting into the SPT cache pays off for `algorithm`'s
  /// substrate. SPT_P's measured hit benefit is negative (BENCH_cache
  /// speedup 0.98x: the snapshot export costs more than a restore saves),
  /// so the engine clears QueryCacheContext::allow_sptp_insert for it and
  /// the solver counts AlgoStats::spt_cache_insert_skips instead.
  static bool SptInsertBeneficial(Algorithm algorithm) {
    return algorithm != Algorithm::kIterBoundSptP;
  }

 private:
  /// Distance quintile (0 = nearest .. 4 = farthest) of `lb` against the
  /// rolling scale; 2 (neutral) while the scale has no samples.
  static int Quintile(uint64_t lb_x16, uint64_t scale_x16);

  /// Profile latency estimate for `a`: the live EWMA once a sample exists,
  /// otherwise the static prior re-anchored by the learned scale.
  uint64_t Effective(Algorithm a) const;

  /// Cold-path candidate algorithms under the current oracle config.
  std::vector<Algorithm> ColdCandidates() const;

  const KpjInstance& instance_;
  KpjOptions base_;  ///< Oracle-resolved solver knobs (algorithm ignored).
  PlannerOptions options_;

  /// Fixed-size direct-mapped recurrence table over target-set
  /// fingerprints: detects the paper's join shape (same category queried
  /// from many sources) before any tree is cached, and — once one is —
  /// holds the paired per-shape latency estimates the residency rule
  /// arbitrates with. A global per-algorithm EWMA cannot arbitrate this:
  /// it averages over shapes, and a forward solver that is cheap on small
  /// ad-hoc queries can be 3x slower than a resident DA-SPT on the very
  /// category the decision is about (and vice versa on another instance).
  struct RepeatSlot {
    uint64_t fingerprint = 0;
    uint32_t count = 0;
    /// EWMA of measured latency for queries of this shape run on DA-SPT
    /// with its tree resident; 0 = not yet measured.
    uint64_t dasp_x16us = 0;
    /// EWMA of measured latency for queries of this shape run on any
    /// forward algorithm; 0 = not yet measured.
    uint64_t fwd_x16us = 0;
  };
  static constexpr size_t kRepeatSlots = 256;

  mutable std::mutex mu_;
  PlannerProfile profile_;
  std::array<RepeatSlot, kRepeatSlots> repeats_{};
  uint64_t decisions_ = 0;  ///< Exploration PRNG stream index.
};

}  // namespace kpj

#endif  // KPJ_CORE_PLANNER_H_
