#ifndef KPJ_CORE_KPJ_H_
#define KPJ_CORE_KPJ_H_

#include <memory>
#include <vector>

#include "core/kpj_query.h"
#include "core/solver.h"
#include "graph/graph.h"
#include "graph/reorder.h"
#include "index/category_index.h"
#include "util/status.h"

namespace kpj {

/// A graph relabeled into a cache-friendly layout (graph/reorder.h)
/// together with the permutation connecting it to the caller's ids.
/// KpjInstance (core/kpj_instance.h) owns one of these; queries go through
/// the instance-based RunKpj/RunKsp or a KpjEngine, which translate ids at
/// the boundary so callers never observe remapped ids.
struct ReorderedGraph {
  Graph graph;              ///< Internal (relabeled) layout.
  Graph reverse;            ///< graph.Reverse(), same layout.
  Permutation permutation;  ///< original id -> internal id; empty = identity.

  NodeId ToInternal(NodeId original) const {
    return permutation.ToNew(original);
  }
  NodeId ToOriginal(NodeId internal) const {
    return permutation.ToOld(internal);
  }
};

/// Validates `query` against `graph` and produces the single-source view
/// solvers execute. Fails on: empty source/target sets, out-of-range ids,
/// duplicate sources, k == 0, or overlapping source/target sets with
/// multiple sources (GKPJ with V_S ∩ V_T != ∅ is undefined; see
/// DESIGN.md). A single source contained in V_T is fine: it is dropped
/// from the per-query target set, which exactly excludes the trivial
/// zero-length path.
///
/// The returned PreparedQuery references `graph`/`reverse` directly for a
/// single source. For GKPJ use AugmentForGkpj first.
Result<PreparedQuery> PrepareQuery(const Graph& graph, const Graph& reverse,
                                   const KpjQuery& query);

/// Materialized virtual-super-source graphs for a GKPJ query (§6): node
/// `n` is the virtual source with 0-weight arcs to every real source.
/// Build once per source set and reuse across queries/algorithms.
struct GkpjAugmentation {
  Graph graph;
  Graph reverse;
  NodeId virtual_source = kInvalidNode;
};

/// Builds the augmented graphs for `sources` (must be non-empty, in range,
/// duplicate-free).
Result<GkpjAugmentation> AugmentForGkpj(const Graph& graph,
                                        std::vector<NodeId> sources);

/// Builds the KpjQuery for "top-k paths from `source` to category `T`"
/// using the inverted index (paper §2).
Result<KpjQuery> MakeCategoryQuery(const CategoryIndex& index, NodeId source,
                                   CategoryId category, uint32_t k);

/// Removes a leading/trailing virtual node (>= num_real_nodes) from each
/// result path in place. Exposed for callers driving solvers directly.
void StripVirtualNodes(NodeId num_real_nodes, KpjResult* result);

}  // namespace kpj

#endif  // KPJ_CORE_KPJ_H_
