#ifndef KPJ_CORE_KPJ_H_
#define KPJ_CORE_KPJ_H_

#include <memory>
#include <vector>

#include "core/kpj_query.h"
#include "core/solver.h"
#include "graph/graph.h"
#include "graph/reorder.h"
#include "index/category_index.h"
#include "util/status.h"

namespace kpj {

// NOTE: the loose-graph and ReorderedGraph entry points below are kept as
// thin compatibility shims for one release. New code should build a
// KpjInstance (core/kpj_instance.h) and use the instance-based overloads —
// one handle bundles graph, reverse, permutation, and the offline indexes,
// and the concurrent KpjEngine (core/engine.h) only accepts instances.

/// A graph relabeled into a cache-friendly layout (graph/reorder.h)
/// together with the permutation connecting it to the caller's ids.
///
/// The facade overloads taking a ReorderedGraph accept queries and return
/// paths in *original* ids — translation into and out of the internal
/// layout happens at this boundary, so callers never observe remapped ids.
/// `options.landmarks`, by contrast, must already be in the internal
/// layout (build it on `graph`, or Remap an existing index with
/// `permutation`), since solvers consult it in that id space.
struct ReorderedGraph {
  Graph graph;              ///< Internal (relabeled) layout.
  Graph reverse;            ///< graph.Reverse(), same layout.
  Permutation permutation;  ///< original id -> internal id; empty = identity.

  NodeId ToInternal(NodeId original) const {
    return permutation.ToNew(original);
  }
  NodeId ToOriginal(NodeId internal) const {
    return permutation.ToOld(internal);
  }
};

/// Computes the `strategy` relabeling of `graph`, applies it, and builds
/// the reverse graph. kNone yields an identity-permutation bundle (the
/// graphs are plain copies).
ReorderedGraph ReorderForLocality(const Graph& graph,
                                  ReorderStrategy strategy);

/// Wraps already-remapped graphs (e.g. loaded from a version-2 binary
/// file, see graph/serialize.h) without recomputing anything. `permutation`
/// may be empty; otherwise its size must match the graph.
ReorderedGraph WrapReordered(Graph graph, Permutation permutation);

/// Validates `query` against `graph` and produces the single-source view
/// solvers execute. Fails on: empty source/target sets, out-of-range ids,
/// duplicate sources, k == 0, or overlapping source/target sets with
/// multiple sources (GKPJ with V_S ∩ V_T != ∅ is undefined; see
/// DESIGN.md). A single source contained in V_T is fine: it is dropped
/// from the per-query target set, which exactly excludes the trivial
/// zero-length path.
///
/// The returned PreparedQuery references `graph`/`reverse` directly for a
/// single source. For GKPJ use AugmentForGkpj first.
Result<PreparedQuery> PrepareQuery(const Graph& graph, const Graph& reverse,
                                   const KpjQuery& query);

/// Materialized virtual-super-source graphs for a GKPJ query (§6): node
/// `n` is the virtual source with 0-weight arcs to every real source.
/// Build once per source set and reuse across queries/algorithms.
struct GkpjAugmentation {
  Graph graph;
  Graph reverse;
  NodeId virtual_source = kInvalidNode;
};

/// Builds the augmented graphs for `sources` (must be non-empty, in range,
/// duplicate-free).
Result<GkpjAugmentation> AugmentForGkpj(const Graph& graph,
                                        std::vector<NodeId> sources);

/// One-shot convenience: validates, prepares (augmenting for GKPJ),
/// constructs the solver selected by `options`, runs it, and strips any
/// virtual source from the returned paths.
///
/// Deprecated shim — prefer RunKpj(const KpjInstance&, ...). For repeated
/// single-source queries over one graph, prefer a KpjEngine, or build a
/// solver once via MakeSolver and call Run on PrepareQuery results.
Result<KpjResult> RunKpj(const Graph& graph, const Graph& reverse,
                         const KpjQuery& query, const KpjOptions& options);

/// KSP convenience (paper Def. 3.1): top-k simple shortest paths between
/// two physical nodes — a KPJ query whose category holds one node.
Result<KpjResult> RunKsp(const Graph& graph, const Graph& reverse,
                         NodeId source, NodeId target, uint32_t k,
                         const KpjOptions& options);

/// RunKpj against a reordered graph: `query` is in original ids, the
/// returned paths are in original ids, and the solver runs on the
/// cache-optimized internal layout. See ReorderedGraph for the
/// `options.landmarks` id-space requirement. Deprecated shim — prefer
/// RunKpj(const KpjInstance&, ...).
Result<KpjResult> RunKpj(const ReorderedGraph& reordered,
                         const KpjQuery& query, const KpjOptions& options);

/// RunKsp against a reordered graph (original ids in and out).
Result<KpjResult> RunKsp(const ReorderedGraph& reordered, NodeId source,
                         NodeId target, uint32_t k,
                         const KpjOptions& options);

/// Builds the KpjQuery for "top-k paths from `source` to category `T`"
/// using the inverted index (paper §2).
Result<KpjQuery> MakeCategoryQuery(const CategoryIndex& index, NodeId source,
                                   CategoryId category, uint32_t k);

/// Removes a leading/trailing virtual node (>= num_real_nodes) from each
/// result path in place. Exposed for callers driving solvers directly.
void StripVirtualNodes(NodeId num_real_nodes, KpjResult* result);

}  // namespace kpj

#endif  // KPJ_CORE_KPJ_H_
