#include "server/access_log.h"

#include <sys/stat.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "util/string_util.h"
#include "util/trace.h"

namespace kpj::server {
namespace {

/// Wall-clock milliseconds since the Unix epoch; access-log lines are
/// joined against external systems, so unlike the trace clock this one is
/// absolute.
int64_t WallMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void AppendDouble(std::string* out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  out->append(buf);
}

}  // namespace

Result<std::unique_ptr<AccessLog>> AccessLog::Open(AccessLogOptions options) {
  if (options.path.empty()) {
    return Status::InvalidArgument("access log path must not be empty");
  }
  std::FILE* file = std::fopen(options.path.c_str(), "ab");
  if (file == nullptr) {
    return Status::IoError("cannot open access log: " + options.path + ": " +
                           std::strerror(errno));
  }
  struct stat st{};
  size_t existing = 0;
  if (::fstat(::fileno(file), &st) == 0 && st.st_size > 0) {
    existing = static_cast<size_t>(st.st_size);
  }
  return std::unique_ptr<AccessLog>(
      new AccessLog(std::move(options), file, existing));
}

AccessLog::AccessLog(AccessLogOptions options, std::FILE* file,
                     size_t existing_bytes)
    : options_(std::move(options)), file_(file), file_bytes_(existing_bytes) {
  buffer_.reserve(options_.buffer_bytes + 512);
}

AccessLog::~AccessLog() {
  std::lock_guard<std::mutex> lock(mu_);
  FlushLocked();
  if (file_ != nullptr) std::fclose(file_);
}

void AccessLog::Write(const AccessLogEntry& entry) {
  std::string line;
  line.reserve(256);
  line += "{\"ts_ms\":";
  line += std::to_string(WallMillis());
  line += ",\"trace_id\":\"";
  line += FormatTraceId(entry.trace_id);
  line += "\",\"peer\":";
  line += JsonEscape(entry.peer);
  line += ",\"type\":";
  line += JsonEscape(entry.type);
  line += ",\"algorithm\":";
  line += JsonEscape(entry.algorithm);
  if (!entry.planner_reason.empty()) {
    line += ",\"planner_reason\":";
    line += JsonEscape(entry.planner_reason);
  }
  line += ",\"k\":";
  line += std::to_string(entry.k);
  line += ",\"queue_ms\":";
  AppendDouble(&line, entry.queue_ms);
  line += ",\"exec_ms\":";
  AppendDouble(&line, entry.exec_ms);
  line += ",\"status\":";
  line += JsonEscape(api::StatusCodeName(entry.status));
  line += ",\"epoch\":";
  line += std::to_string(entry.epoch);
  line += ",\"shed_reason\":";
  line += JsonEscape(entry.shed_reason);
  line += "}\n";

  std::lock_guard<std::mutex> lock(mu_);
  ++lines_;
  buffer_ += line;
  if (buffer_.size() >= options_.buffer_bytes) FlushLocked();
}

Status AccessLog::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  FlushLocked();
  return error_;
}

uint64_t AccessLog::lines_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_;
}

void AccessLog::FlushLocked() {
  if (buffer_.empty() || file_ == nullptr) {
    buffer_.clear();
    return;
  }
  if (file_bytes_ + buffer_.size() > options_.rotate_bytes &&
      file_bytes_ > 0) {
    RotateLocked();
    if (file_ == nullptr) {
      buffer_.clear();
      return;
    }
  }
  size_t written = std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
  if (written != buffer_.size() && error_.ok()) {
    error_ = Status::IoError("short write to access log: " + options_.path);
  }
  std::fflush(file_);
  file_bytes_ += written;
  buffer_.clear();
}

void AccessLog::RotateLocked() {
  std::fclose(file_);
  file_ = nullptr;
  std::string rotated = options_.path + ".1";
  // A failed rename (e.g. EXDEV on a weird mount) falls through to
  // reopening in append mode — the file keeps growing past the limit,
  // which beats losing lines.
  std::rename(options_.path.c_str(), rotated.c_str());
  file_ = std::fopen(options_.path.c_str(), "ab");
  if (file_ == nullptr) {
    if (error_.ok()) {
      error_ = Status::IoError("cannot reopen access log after rotation: " +
                               options_.path);
    }
    return;
  }
  struct stat st{};
  file_bytes_ = 0;
  if (::fstat(::fileno(file_), &st) == 0 && st.st_size > 0) {
    file_bytes_ = static_cast<size_t>(st.st_size);
  }
}

}  // namespace kpj::server
