#include "server/server.h"

#include <cerrno>
#include <chrono>
#include <cmath>
#include <poll.h>
#include <sstream>
#include <utility>

#include "core/kpj_query.h"
#include "graph/serialize.h"
#include "index/landmark_index.h"
#include "util/logging.h"
#include "util/trace.h"

namespace kpj::server {
namespace {

double FiniteOrZero(double value) {
  return std::isfinite(value) ? value : 0.0;
}

/// Blocks until `primary` or the drain fd is readable. Returns true when
/// the primary fd has data (served before drain, so pipelined requests
/// are answered); false when only the drain broadcast fired.
bool PollReadable(int primary, int drain_fd) {
  for (;;) {
    pollfd fds[2] = {{primary, POLLIN, 0}, {drain_fd, POLLIN, 0}};
    int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (fds[0].revents != 0) return true;
    if (fds[1].revents != 0) return false;
  }
}

}  // namespace

// --- ServingState ---------------------------------------------------------

Result<std::shared_ptr<ServingState>> ServingState::Load(
    const std::string& graph_path, const std::string& landmarks_path,
    const api::EngineConfig& config, uint64_t epoch, bool trusted) {
  KPJ_RETURN_IF_ERROR(config.Validate());
  std::optional<KpjInstance> loaded;
  std::optional<HubLabelIndex> hub_labels;
  // Version-4 files are mapped, not copied: the peek decides the path, and
  // a failed peek (DIMACS text, missing file, ...) falls through so
  // LoadGraphAuto produces the authoritative error.
  Result<uint32_t> version = PeekGraphFileVersion(graph_path);
  if (version.ok() && version.value() == 4) {
    MappedLoadOptions map_options;
    map_options.verify_checksums = !trusted;
    Result<KpjInstance> mapped =
        KpjInstance::LoadMapped(graph_path, map_options);
    if (!mapped.ok()) return mapped.status();
    loaded = std::move(mapped).value();
  } else {
    Result<GraphFile> file = LoadGraphAuto(graph_path);
    if (!file.ok()) return file.status();
    hub_labels = std::move(file.value().hub_labels);
    Result<KpjInstance> instance = KpjInstance::Wrap(
        std::move(file.value().graph), std::move(file.value().permutation));
    if (!instance.ok()) return instance.status();
    loaded = std::move(instance).value();
  }
  auto state = std::make_shared<ServingState>(std::move(*loaded));
  state->epoch = epoch;
  state->graph_path = graph_path;
  if (hub_labels.has_value()) {
    KPJ_RETURN_IF_ERROR(
        state->instance.AttachHubLabels(std::move(hub_labels).value()));
  }
  if (!landmarks_path.empty()) {
    Result<LandmarkIndex> landmarks = LandmarkIndex::Load(landmarks_path);
    if (!landmarks.ok()) return landmarks.status();
    if (landmarks.value().num_nodes() != state->instance.NumNodes()) {
      return Status::InvalidArgument(
          "landmark index was built for a different graph");
    }
    KPJ_RETURN_IF_ERROR(
        state->instance.AttachLandmarks(std::move(landmarks).value()));
  }
  if (config.oracle == OracleKind::kHubLabel) {
    Status selected = state->instance.SelectOracle(OracleKind::kHubLabel);
    if (!selected.ok()) {
      return Status::InvalidArgument(
          "--oracle hublabel needs a graph file with stored hub labels "
          "(build one with 'kpj_cli index')");
    }
  }
  // The instance is at its final heap address now; the engine may keep
  // references into it.
  state->engine = std::make_unique<KpjEngine>(state->instance,
                                              config.ToEngineOptions());
  return state;
}

// --- AdmissionController --------------------------------------------------

AdmissionController::Outcome AdmissionController::Admit(double deadline_ms,
                                                        double* queue_ms) {
  *queue_ms = 0.0;
  std::unique_lock<std::mutex> lock(mutex_);
  if (active_ < slots_) {
    ++active_;
    in_flight_.store(active_, std::memory_order_relaxed);
    return Outcome::kAdmitted;
  }
  if (waiting_ >= max_queue_) return Outcome::kQueueFull;
  ++waiting_;
  Timer wait_timer;
  bool slot_available;
  if (deadline_ms > 0.0) {
    slot_available = slot_free_.wait_for(
        lock, std::chrono::duration<double, std::milli>(deadline_ms),
        [this] { return active_ < slots_; });
  } else {
    slot_free_.wait(lock, [this] { return active_ < slots_; });
    slot_available = true;
  }
  --waiting_;
  *queue_ms = wait_timer.ElapsedMillis();
  if (!slot_available) return Outcome::kDeadlineExhausted;
  ++active_;
  in_flight_.store(active_, std::memory_order_relaxed);
  return Outcome::kAdmitted;
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    KPJ_CHECK(active_ > 0) << "Release without a matching Admit";
    --active_;
    in_flight_.store(active_, std::memory_order_relaxed);
  }
  slot_free_.notify_one();
}

// --- KpjServer ------------------------------------------------------------

KpjServer::KpjServer(KpjServerOptions options)
    : options_(std::move(options)) {}

KpjServer::~KpjServer() {
  RequestDrain();
  Wait();
}

Status KpjServer::Start() {
  Result<std::shared_ptr<ServingState>> state =
      ServingState::Load(options_.graph_path, options_.landmarks_path,
                         options_.engine, /*epoch=*/1,
                         options_.trusted_graphs);
  if (!state.ok()) return state.status();
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    state_ = std::move(state).value();
  }
  admission_ = std::make_unique<AdmissionController>(
      this->state()->engine->num_workers(), options_.max_queue);

  if (!options_.access_log_path.empty()) {
    AccessLogOptions log_options;
    log_options.path = options_.access_log_path;
    log_options.rotate_bytes = options_.access_log_rotate_bytes;
    Result<std::unique_ptr<AccessLog>> log =
        AccessLog::Open(std::move(log_options));
    if (!log.ok()) return log.status();
    access_log_ = std::move(log).value();
  }

  Result<Socket> listener =
      ListenTcp(options_.host, options_.port, options_.backlog);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  Result<uint16_t> port = LocalPort(listener_);
  if (!port.ok()) return port.status();
  port_ = port.value();
  uptime_.Restart();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void KpjServer::RequestDrain() { drain_.Notify(); }

void KpjServer::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<Connection> connections;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    connections.swap(connections_);
  }
  for (Connection& connection : connections) {
    if (connection.thread.joinable()) connection.thread.join();
  }
  // Every connection is closed and answered; nothing can append another
  // line, so this flush is the complete log for the drain test / operator.
  if (access_log_ != nullptr) {
    Status flushed = access_log_->Flush();
    if (!flushed.ok()) {
      KPJ_LOG(Warning) << "access log flush failed: " << flushed.message();
    }
  }
}

std::shared_ptr<ServingState> KpjServer::state() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return state_;
}

void KpjServer::AcceptLoop() {
  while (!drain_.triggered()) {
    if (!PollReadable(listener_.fd(), drain_.fd())) break;
    Result<Socket> accepted = AcceptConnection(listener_);
    if (!accepted.ok()) {
      if (drain_.triggered()) break;
      continue;
    }
    auto done = std::make_shared<std::atomic<bool>>(false);
    Connection connection;
    connection.done = done;
    connection.thread = std::thread(
        [this, done](Socket socket) {
          ConnectionLoop(std::move(socket));
          done->store(true, std::memory_order_release);
        },
        std::move(accepted).value());
    std::lock_guard<std::mutex> lock(threads_mutex_);
    // Reclaim finished connections so a long-lived server does not
    // accumulate joinable threads.
    for (Connection& old : connections_) {
      if (old.done->load(std::memory_order_acquire) &&
          old.thread.joinable()) {
        old.thread.join();
      }
    }
    std::erase_if(connections_, [](const Connection& c) {
      return !c.thread.joinable();
    });
    connections_.push_back(std::move(connection));
  }
}

void KpjServer::ConnectionLoop(Socket socket) {
  TraceRecorder& rec = TraceRecorder::Global();
  ConnContext conn;
  Result<std::string> peer = PeerAddress(socket);
  conn.peer = peer.ok() ? peer.value() : "unknown";
  conn.accept_us = rec.NowUs();
  for (;;) {
    // Drain: pipelined requests already on the wire are still answered
    // (the socket wins the poll); the connection closes once idle.
    if (!PollReadable(socket.fd(), drain_.fd())) break;
    int64_t read_start_us = rec.NowUs();
    Result<Frame> frame = ReadFrame(socket, options_.max_frame_bytes);
    if (!frame.ok()) {
      metrics_.rejected.Increment();
      api::ResponseEnvelope response = api::ErrorResponse(
          0, api::StatusCode::kInvalidArgument, frame.status().message());
      (void)WriteFrame(socket, api::SerializeResponse(response));
      break;
    }
    if (frame.value().eof) break;
    int64_t parse_start_us = rec.NowUs();
    api::ResponseEnvelope response;
    Result<api::RequestEnvelope> request =
        api::ParseRequest(frame.value().payload);
    if (!request.ok()) {
      metrics_.rejected.Increment();
      response = api::ErrorResponse(0, api::StatusCode::kInvalidArgument,
                                    request.status().message());
      AccessLogEntry entry;
      entry.peer = conn.peer;
      entry.type = "invalid";
      entry.status = api::StatusCode::kInvalidArgument;
      LogAccess(std::move(entry));
    } else {
      const api::RequestEnvelope& req = request.value();
      int64_t parse_end_us = rec.NowUs();
      // Collection turns the recorder on, so it must precede the
      // retroactive accept/parse events below (their timestamps were
      // captured before the trace id was known).
      bool collect = req.collect_spans && req.trace_id != 0;
      if (collect) BeginSpanCollection();
      {
        // Everything this thread records while handling the request —
        // server.* spans here, nothing when trace_id is 0 — carries the
        // request's id; the engine worker gets it via QueryContext.
        TraceContext trace_ctx(req.trace_id);
        if (req.trace_id != 0 && rec.enabled()) {
          if (conn.first_request) {
            rec.AddCompleteEvent("server.accept", conn.accept_us,
                                 read_start_us - conn.accept_us);
          }
          rec.AddCompleteEvent("server.parse", parse_start_us,
                               parse_end_us - parse_start_us);
        }
        conn.first_request = false;
        response = Handle(req, conn);
      }
      if (collect) response.trace_spans = EndSpanCollection(req.trace_id);
      if (req.trace_id != 0) response.trace_id = req.trace_id;
    }
    if (!WriteFrame(socket, api::SerializeResponse(response)).ok()) break;
  }
}

api::ResponseEnvelope KpjServer::Handle(const api::RequestEnvelope& request,
                                        ConnContext& conn) {
  switch (request.type) {
    case api::RequestType::kQuery:
      return HandleQuery(request, conn);
    case api::RequestType::kBatch:
      return HandleBatch(request, conn);
    case api::RequestType::kMetrics:
      return HandleMetrics(request);
    case api::RequestType::kHealth:
      return HandleHealth(request);
    case api::RequestType::kStats:
      return HandleStats(request);
    case api::RequestType::kDrain: {
      KPJ_TRACE_INSTANT("server.drain");
      RequestDrain();
      api::ResponseEnvelope response;
      response.id = request.id;
      return response;
    }
    case api::RequestType::kSwap:
      return HandleSwap(request);
  }
  return api::ErrorResponse(request.id, api::StatusCode::kInternal,
                            "unhandled request type");
}

api::QueryResponse KpjServer::RunAdmitted(
    const std::shared_ptr<ServingState>& state,
    const api::QueryRequest& request, double batch_deadline_ms,
    uint64_t trace_id) {
  double deadline_ms = request.deadline_ms >= 0.0 ? request.deadline_ms
                       : batch_deadline_ms >= 0.0 ? batch_deadline_ms
                                                  : options_.engine.deadline_ms;
  api::QueryResponse response;
  response.epoch = state->epoch;

  // Resolve the per-request algorithm override before admission: a bad
  // spelling should not consume a slot.
  std::optional<Algorithm> algorithm_override;
  if (!request.algorithm.empty()) {
    Result<Algorithm> parsed = api::ParseAlgorithm(request.algorithm);
    if (!parsed.ok()) {
      metrics_.rejected.Increment();
      response.status = api::StatusCode::kInvalidArgument;
      response.message = parsed.status().message();
      return response;
    }
    algorithm_override = parsed.value();
  }

  double queue_ms = 0.0;
  AdmissionController::Outcome outcome;
  {
    TraceSpan queue_span("server.queue");
    outcome = admission_->Admit(deadline_ms, &queue_ms);
  }
  metrics_.queue_time.Record(queue_ms);
  response.queue_ms = queue_ms;
  if (outcome != AdmissionController::Outcome::kAdmitted) {
    metrics_.shed.Increment();
    response.status = api::StatusCode::kOverloaded;
    response.message = outcome == AdmissionController::Outcome::kQueueFull
                           ? "admission queue full"
                           : "queue time exhausted the deadline";
    return response;
  }
  // Queue time is part of the request's budget: the solver only gets what
  // is left. A budget the queue already consumed is a shed, not a run.
  double remaining_ms = deadline_ms;
  if (deadline_ms > 0.0) {
    remaining_ms = deadline_ms - queue_ms;
    if (remaining_ms <= 0.0) {
      admission_->Release();
      metrics_.shed.Increment();
      response.status = api::StatusCode::kOverloaded;
      response.message = "queue time exhausted the deadline";
      return response;
    }
  }
  metrics_.accepted.Increment();
  Timer run_timer;
  Result<KpjResult> result = [&] {
    TraceSpan execute_span("server.execute");
    return state->engine
        ->Submit(request.ToQuery(), remaining_ms,
                 QueryContext{trace_id, queue_ms, algorithm_override})
        .get();
  }();
  double elapsed_ms = run_timer.ElapsedMillis();
  admission_->Release();
  if (drain_.triggered()) metrics_.drained.Increment();
  return api::BuildQueryResponse(result, state->epoch, elapsed_ms, queue_ms);
}

api::ResponseEnvelope KpjServer::HandleQuery(
    const api::RequestEnvelope& request, ConnContext& conn) {
  AccessLogEntry entry;
  entry.trace_id = request.trace_id;
  entry.peer = conn.peer;
  entry.type = "query";
  Result<api::QueryRequest> query =
      api::QueryRequestFromJson(request.payload);
  if (!query.ok()) {
    metrics_.rejected.Increment();
    entry.status = api::StatusCode::kInvalidArgument;
    LogAccess(std::move(entry));
    return api::ErrorResponse(request.id, api::StatusCode::kInvalidArgument,
                              query.status().message());
  }
  entry.k = query.value().k;
  std::shared_ptr<ServingState> serving = state();
  if (drain_.triggered() || serving == nullptr) {
    metrics_.rejected.Increment();
    entry.status = api::StatusCode::kUnavailable;
    LogAccess(std::move(entry));
    return api::ErrorResponse(request.id, api::StatusCode::kUnavailable,
                              "server is draining");
  }
  api::QueryResponse response =
      RunAdmitted(serving, query.value(), /*batch_deadline_ms=*/-1.0,
                  request.trace_id);

  bool shed = response.status == api::StatusCode::kOverloaded;
  window_.Record(response.queue_ms + response.elapsed_ms, shed,
                 !shed && response.status != api::StatusCode::kOk);
  // Log the algorithm that actually served the query (the planner's pick
  // under auto); fall back to the configured one when it never ran.
  entry.algorithm = !response.algorithm_chosen.empty()
                        ? response.algorithm_chosen
                        : AlgorithmName(options_.engine.algorithm);
  entry.planner_reason = response.planner_reason;
  entry.queue_ms = response.queue_ms;
  entry.exec_ms = response.elapsed_ms;
  entry.status = response.status;
  entry.epoch = response.epoch;
  if (shed) entry.shed_reason = response.message;
  LogAccess(std::move(entry));

  api::ResponseEnvelope envelope;
  envelope.id = request.id;
  envelope.status = response.status;
  envelope.message = response.message;
  {
    // The span set ships *inside* the envelope, so the serialize span can
    // only cover building the payload, not the envelope dump itself.
    TraceSpan serialize_span("server.serialize");
    envelope.payload = api::ToJson(response);
  }
  return envelope;
}

api::ResponseEnvelope KpjServer::HandleBatch(
    const api::RequestEnvelope& request, ConnContext& conn) {
  AccessLogEntry entry;
  entry.trace_id = request.trace_id;
  entry.peer = conn.peer;
  entry.type = "batch";
  Result<api::BatchRequest> batch =
      api::BatchRequestFromJson(request.payload);
  if (!batch.ok()) {
    metrics_.rejected.Increment();
    entry.status = api::StatusCode::kInvalidArgument;
    LogAccess(std::move(entry));
    return api::ErrorResponse(request.id, api::StatusCode::kInvalidArgument,
                              batch.status().message());
  }
  // Batch lines carry the query count in `k` (there is no single per-line
  // k) and the batch wall time in exec_ms.
  entry.k = static_cast<uint32_t>(batch.value().queries.size());
  std::shared_ptr<ServingState> serving = state();
  if (drain_.triggered() || serving == nullptr) {
    metrics_.rejected.Increment();
    entry.status = api::StatusCode::kUnavailable;
    LogAccess(std::move(entry));
    return api::ErrorResponse(request.id, api::StatusCode::kUnavailable,
                              "server is draining");
  }
  const std::vector<api::QueryRequest>& queries = batch.value().queries;
  double deadline_ms = batch.value().deadline_ms >= 0.0
                           ? batch.value().deadline_ms
                           : options_.engine.deadline_ms;
  // A batch runs under one engine context, so it supports one algorithm
  // override: every query that sets one must agree (unset ones inherit).
  std::optional<Algorithm> algorithm_override;
  for (const api::QueryRequest& query : queries) {
    if (query.algorithm.empty()) continue;
    Result<Algorithm> parsed = api::ParseAlgorithm(query.algorithm);
    Status invalid = !parsed.ok()
                         ? parsed.status()
                         : algorithm_override.has_value() &&
                               *algorithm_override != parsed.value()
                         ? Status::InvalidArgument(
                               "a batch supports a single algorithm override")
                         : Status::Ok();
    if (!invalid.ok()) {
      metrics_.rejected.Increment();
      entry.status = api::StatusCode::kInvalidArgument;
      LogAccess(std::move(entry));
      return api::ErrorResponse(request.id, api::StatusCode::kInvalidArgument,
                                invalid.message());
    }
    algorithm_override = parsed.value();
  }
  entry.algorithm = AlgorithmName(
      algorithm_override.value_or(options_.engine.algorithm));
  entry.epoch = serving->epoch;

  // One admission slot per batch: the engine spreads the queries across
  // its own pool (this is exactly RunBatch, so answers are byte-identical
  // to the in-process engine), while admission keeps the number of
  // concurrently executing *requests* bounded.
  api::BatchResponse response;
  double queue_ms = 0.0;
  AdmissionController::Outcome outcome;
  {
    TraceSpan queue_span("server.queue");
    outcome = admission_->Admit(deadline_ms, &queue_ms);
  }
  metrics_.queue_time.Record(queue_ms);
  entry.queue_ms = queue_ms;
  double remaining_ms = deadline_ms > 0.0 ? deadline_ms - queue_ms
                                          : deadline_ms;
  if (outcome != AdmissionController::Outcome::kAdmitted ||
      (deadline_ms > 0.0 && remaining_ms <= 0.0)) {
    if (outcome == AdmissionController::Outcome::kAdmitted) {
      admission_->Release();
    }
    metrics_.shed.Add(queries.size());
    window_.Record(queue_ms, /*shed=*/true, /*error=*/false);
    const char* reason = outcome == AdmissionController::Outcome::kQueueFull
                             ? "admission queue full"
                             : "queue time exhausted the deadline";
    entry.status = api::StatusCode::kOverloaded;
    entry.shed_reason = reason;
    LogAccess(std::move(entry));
    return api::ErrorResponse(request.id, api::StatusCode::kOverloaded,
                              reason);
  }
  metrics_.accepted.Add(queries.size());
  std::vector<KpjQuery> engine_queries;
  engine_queries.reserve(queries.size());
  for (const api::QueryRequest& query : queries) {
    engine_queries.push_back(query.ToQuery());
  }
  Timer run_timer;
  std::vector<Result<KpjResult>> results;
  {
    TraceSpan execute_span("server.execute");
    results = serving->engine->RunBatch(
        engine_queries, remaining_ms,
        QueryContext{request.trace_id, queue_ms, algorithm_override});
  }
  double exec_ms = run_timer.ElapsedMillis();
  admission_->Release();
  if (drain_.triggered()) metrics_.drained.Add(queries.size());

  response.results.reserve(results.size());
  for (const Result<KpjResult>& result : results) {
    // Batch entries carry no per-query wall time (they ran concurrently);
    // queue_ms is the shared admission wait.
    response.results.push_back(api::BuildQueryResponse(
        result, serving->epoch, /*elapsed_ms=*/0.0, queue_ms));
  }
  // One request event in the rolling window: stats count requests, and a
  // batch is one request (matching StatsInfo's documented semantics).
  window_.Record(queue_ms + exec_ms, /*shed=*/false, /*error=*/false);
  entry.exec_ms = exec_ms;
  LogAccess(std::move(entry));
  api::ResponseEnvelope envelope;
  envelope.id = request.id;
  {
    TraceSpan serialize_span("server.serialize");
    envelope.payload = api::ToJson(response);
  }
  return envelope;
}

api::ResponseEnvelope KpjServer::HandleMetrics(
    const api::RequestEnvelope& request) {
  Result<api::MetricsRequest> metrics =
      api::MetricsRequestFromJson(request.payload);
  if (!metrics.ok()) {
    metrics_.rejected.Increment();
    return api::ErrorResponse(request.id, api::StatusCode::kInvalidArgument,
                              metrics.status().message());
  }
  std::string body = metrics.value().format == "prom" ? MetricsPrometheus()
                                                      : MetricsJson();
  api::JsonValue payload = api::JsonValue::Object();
  payload.Set("format", api::JsonValue::Str(metrics.value().format));
  payload.Set("body", api::JsonValue::Str(std::move(body)));
  api::ResponseEnvelope envelope;
  envelope.id = request.id;
  envelope.payload = std::move(payload);
  return envelope;
}

api::ResponseEnvelope KpjServer::HandleHealth(
    const api::RequestEnvelope& request) {
  std::shared_ptr<ServingState> serving = state();
  api::HealthInfo info;
  info.serving = !drain_.triggered() && serving != nullptr;
  if (serving != nullptr) {
    info.epoch = serving->epoch;
    info.graph = serving->graph_path;
    info.nodes = serving->instance.NumNodes();
  }
  info.uptime_ms = static_cast<uint64_t>(uptime_.ElapsedMillis());
  info.in_flight = admission_ != nullptr ? admission_->in_flight() : 0;
  api::ResponseEnvelope envelope;
  envelope.id = request.id;
  envelope.payload = api::ToJson(info);
  return envelope;
}

api::ResponseEnvelope KpjServer::HandleStats(
    const api::RequestEnvelope& request) {
  api::ResponseEnvelope envelope;
  envelope.id = request.id;
  envelope.payload = api::ToJson(Stats());
  return envelope;
}

api::StatsInfo KpjServer::Stats() const {
  RollingSnapshot snap = window_.Snapshot();
  api::StatsInfo info;
  info.window_s = snap.window_s;
  info.requests = snap.requests;
  info.shed = snap.shed;
  info.errors = snap.errors;
  info.qps = snap.qps;
  info.latency_mean_ms = FiniteOrZero(snap.latency_mean_ms);
  info.latency_p50_ms = FiniteOrZero(snap.latency_p50_ms);
  info.latency_p90_ms = FiniteOrZero(snap.latency_p90_ms);
  info.latency_p99_ms = FiniteOrZero(snap.latency_p99_ms);
  info.latency_max_ms = FiniteOrZero(snap.latency_max_ms);
  info.in_flight = admission_ != nullptr ? admission_->in_flight() : 0;
  std::shared_ptr<ServingState> serving = state();
  info.epoch = serving != nullptr ? serving->epoch : 0;
  info.per_second = std::move(snap.per_second);
  return info;
}

api::ResponseEnvelope KpjServer::HandleSwap(
    const api::RequestEnvelope& request) {
  Result<api::SwapRequest> swap = api::SwapRequestFromJson(request.payload);
  if (!swap.ok()) {
    metrics_.rejected.Increment();
    return api::ErrorResponse(request.id, api::StatusCode::kInvalidArgument,
                              swap.status().message());
  }
  if (drain_.triggered()) {
    metrics_.rejected.Increment();
    return api::ErrorResponse(request.id, api::StatusCode::kUnavailable,
                              "server is draining");
  }
  Result<api::SwapInfo> info = Swap(swap.value());
  if (!info.ok()) {
    metrics_.rejected.Increment();
    return api::ErrorResponse(request.id,
                              api::FromCoreStatus(info.status()),
                              info.status().message());
  }
  api::ResponseEnvelope envelope;
  envelope.id = request.id;
  envelope.payload = api::ToJson(info.value());
  return envelope;
}

Result<api::SwapInfo> KpjServer::Swap(const api::SwapRequest& request) {
  // Swaps serialize; queries keep flowing on the current state while the
  // new one loads (the only shared lock, state_mutex_, is held just for
  // the pointer flip).
  std::lock_guard<std::mutex> swap_lock(swap_mutex_);
  std::shared_ptr<ServingState> old_state = state();
  api::EngineConfig config = options_.engine;
  if (request.oracle.has_value()) config.oracle = *request.oracle;
  Timer load_timer;
  uint64_t epoch = next_epoch_.fetch_add(1, std::memory_order_relaxed);
  Result<std::shared_ptr<ServingState>> loaded = ServingState::Load(
      request.graph, request.landmarks, config, epoch,
      options_.trusted_graphs);
  if (!loaded.ok()) return loaded.status();
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    state_ = std::move(loaded).value();
  }
  api::SwapInfo info;
  info.old_epoch = old_state != nullptr ? old_state->epoch : 0;
  info.new_epoch = epoch;
  info.load_ms = load_timer.ElapsedMillis();
  metrics_.swap_ms.Record(info.load_ms);
  // old_state's engine (and caches) die with the last in-flight reference.
  return info;
}

// --- Request observability ------------------------------------------------

void KpjServer::LogAccess(AccessLogEntry entry) {
  if (access_log_ == nullptr) return;
  access_log_->Write(entry);
}

void KpjServer::BeginSpanCollection() {
  TraceRecorder& rec = TraceRecorder::Global();
  std::lock_guard<std::mutex> lock(trace_mu_);
  if (collecting_++ == 0) {
    trace_was_enabled_ = rec.enabled();
    if (!trace_was_enabled_) rec.Enable();
  }
}

std::vector<api::TraceSpanWire> KpjServer::EndSpanCollection(
    uint64_t trace_id) {
  TraceRecorder& rec = TraceRecorder::Global();
  // Harvest before the refcount drops: concurrent collectors share the
  // recorder, and each one filters the snapshot down to its own id — the
  // trace-id tag is what keeps pipelined requests from mixing.
  std::vector<api::TraceSpanWire> spans;
  for (const TraceRecorder::Event& event : rec.Snapshot()) {
    if (event.trace_id != trace_id) continue;
    api::TraceSpanWire span;
    span.name = event.name;
    span.ts_us = event.ts_us;
    span.dur_us = event.dur_us;
    span.tid = event.tid;
    spans.push_back(std::move(span));
  }
  std::lock_guard<std::mutex> lock(trace_mu_);
  if (--collecting_ == 0 && !trace_was_enabled_) {
    // Last collector out: stop recording and drop the events, unless
    // something outside the server (a test, a --trace flag) owned the
    // recorder before we touched it.
    rec.Disable();
    rec.Clear();
  }
  return spans;
}

// --- Metrics exposition ---------------------------------------------------

std::string KpjServer::MetricsJson() const {
  std::shared_ptr<ServingState> serving = state();
  std::string engine_json = serving != nullptr
                                ? serving->engine->MetricsJson()
                                : std::string("{\n  \"workers\": 0\n}");
  std::ostringstream extra;
  extra << "  \"server_accepted\": " << metrics_.accepted.value() << ",\n"
        << "  \"server_rejected\": " << metrics_.rejected.value() << ",\n"
        << "  \"server_shed\": " << metrics_.shed.value() << ",\n"
        << "  \"server_drained\": " << metrics_.drained.value() << ",\n"
        << "  \"server_in_flight\": "
        << (admission_ != nullptr ? admission_->in_flight() : 0) << ",\n"
        << "  \"server_epoch\": "
        << (serving != nullptr ? serving->epoch : 0) << ",\n"
        << "  \"server_queue_count\": " << metrics_.queue_time.count()
        << ",\n"
        << "  \"server_queue_mean_ms\": "
        << FiniteOrZero(metrics_.queue_time.Mean()) << ",\n"
        << "  \"server_queue_max_ms\": "
        << FiniteOrZero(metrics_.queue_time.max_ms()) << ",\n"
        << "  \"server_queue_p99_ms\": "
        << FiniteOrZero(metrics_.queue_time.Percentile(99.0)) << ",\n"
        << "  \"server_swap_count\": " << metrics_.swap_ms.count() << ",\n"
        << "  \"server_swap_mean_ms\": "
        << FiniteOrZero(metrics_.swap_ms.Mean()) << ",\n"
        << "  \"server_swap_max_ms\": "
        << FiniteOrZero(metrics_.swap_ms.max_ms()) << ",\n"
        << "  \"server_swap_p99_ms\": "
        << FiniteOrZero(metrics_.swap_ms.Percentile(99.0)) << ",\n"
        << "  \"server_mapped_bytes\": "
        << (serving != nullptr ? serving->instance.mapped_bytes() : 0);
  // Splice the server series into the engine object: drop the closing
  // brace (and its newline), append, close again.
  size_t brace = engine_json.rfind('}');
  KPJ_CHECK(brace != std::string::npos);
  size_t cut = brace;
  if (cut > 0 && engine_json[cut - 1] == '\n') --cut;
  engine_json.erase(cut);
  engine_json += ",\n" + extra.str() + "\n}";
  return engine_json;
}

std::string KpjServer::MetricsPrometheus() const {
  std::shared_ptr<ServingState> serving = state();
  std::ostringstream out;
  if (serving != nullptr) out << serving->engine->MetricsPrometheus();
  auto counter = [&out](const char* name, const char* help, uint64_t value) {
    out << "# HELP " << name << " " << help << "\n"
        << "# TYPE " << name << " counter\n"
        << name << " " << value << "\n";
  };
  counter("kpj_server_accepted_total",
          "Queries admitted to the engine by the server.",
          metrics_.accepted.value());
  counter("kpj_server_rejected_total",
          "Requests rejected (malformed, invalid, or unavailable).",
          metrics_.rejected.value());
  counter("kpj_server_shed_total",
          "Queries shed with kOverloaded by admission control.",
          metrics_.shed.value());
  counter("kpj_server_drained_total",
          "In-flight queries answered after drain began.",
          metrics_.drained.value());
  out << "# HELP kpj_server_in_flight Admitted queries currently executing.\n"
      << "# TYPE kpj_server_in_flight gauge\n"
      << "kpj_server_in_flight "
      << (admission_ != nullptr ? admission_->in_flight() : 0) << "\n";
  out << "# HELP kpj_server_epoch Generation of the serving instance; "
         "increments on hot swap.\n"
      << "# TYPE kpj_server_epoch gauge\n"
      << "kpj_server_epoch " << (serving != nullptr ? serving->epoch : 0)
      << "\n";
  out << "# HELP kpj_server_mapped_bytes Bytes of the read-only graph file "
         "mapping backing the serving instance (0 = heap-owned).\n"
      << "# TYPE kpj_server_mapped_bytes gauge\n"
      << "kpj_server_mapped_bytes "
      << (serving != nullptr ? serving->instance.mapped_bytes() : 0) << "\n";
  // Cumulative-le histograms, same bucket shape as the engine's.
  auto histogram = [&out](const char* name, const char* help,
                          const LatencyHistogram& h) {
    out << "# HELP " << name << " " << help << "\n"
        << "# TYPE " << name << " histogram\n";
    uint64_t cumulative = 0;
    for (size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
      cumulative += h.bucket_count(b);
      double ub = LatencyHistogram::BucketUpperBoundMs(b);
      out << name << "_bucket{le=\"";
      if (std::isinf(ub)) {
        out << "+Inf";
      } else {
        out << ub;
      }
      out << "\"} " << cumulative << "\n";
    }
    out << name << "_sum " << FiniteOrZero(h.sum_ms()) << "\n"
        << name << "_count " << h.count() << "\n";
  };
  histogram("kpj_server_queue_time_ms", "Admission-queue wait per query.",
            metrics_.queue_time);
  histogram("kpj_server_swap_ms",
            "Hot-swap load time (graph load + engine build) per swap.",
            metrics_.swap_ms);
  return out.str();
}

}  // namespace kpj::server
