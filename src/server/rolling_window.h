#ifndef KPJ_SERVER_ROLLING_WINDOW_H_
#define KPJ_SERVER_ROLLING_WINDOW_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "util/stats.h"

namespace kpj::server {

/// Point-in-time view over the trailing window (see RollingWindow).
struct RollingSnapshot {
  uint64_t window_s = 0;   ///< Ring span in seconds.
  uint64_t requests = 0;   ///< Requests finished inside the window.
  uint64_t shed = 0;       ///< ... shed by admission control.
  uint64_t errors = 0;     ///< ... failed for any other reason.
  double qps = 0.0;        ///< requests / window_s.
  double latency_mean_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p90_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;
  /// Requests per live 1 s bucket, oldest first. Shorter than window_s when
  /// the old end of the window predates the first recorded request.
  std::vector<uint64_t> per_second;
};

/// Last-60-seconds load/latency gauges: a ring of 1-second buckets, each
/// holding counters plus a LatencyHistogram. Record() stamps the bucket for
/// the current second (lazily resetting a recycled slot under a per-slot
/// mutex); Snapshot() merges every bucket still inside the window into one
/// distribution, so percentiles describe *recent* traffic rather than the
/// process lifetime — the difference between "what is the daemon doing" and
/// "what has it ever done".
///
/// Concurrency: Record() is called from every connection thread. Counters
/// are relaxed atomics; a snapshot racing a slot reset can misattribute at
/// most one second of traffic. Telemetry semantics, same contract as the
/// engine metrics.
class RollingWindow {
 public:
  static constexpr uint64_t kWindowSeconds = 60;

  RollingWindow();

  /// Records one finished request: total wall latency (queue + execute),
  /// whether admission shed it, and whether it otherwise failed.
  void Record(double latency_ms, bool shed, bool error);

  RollingSnapshot Snapshot() const;

 private:
  struct Slot {
    /// Seconds-since-construction stamp this slot currently represents;
    /// -1 = never used. A slot is live iff stamp is within the window.
    std::atomic<int64_t> stamp{-1};
    std::mutex reset_mu;
    Counter requests;
    Counter shed;
    Counter errors;
    LatencyHistogram latency;
  };

  int64_t NowSeconds() const;
  Slot& SlotForNow(int64_t now_s);

  int64_t origin_ns_ = 0;
  /// Fixed array of kWindowSeconds slots; index = second mod size.
  std::vector<Slot> slots_;
};

}  // namespace kpj::server

#endif  // KPJ_SERVER_ROLLING_WINDOW_H_
