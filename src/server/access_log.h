#ifndef KPJ_SERVER_ACCESS_LOG_H_
#define KPJ_SERVER_ACCESS_LOG_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

#include "api/api.h"
#include "util/status.h"

namespace kpj::server {

/// One structured access-log line (JSONL), written per query/batch request
/// the server handles. Every field joins against some other telemetry
/// stream: `trace_id` against the wire trace and the slow-query log,
/// `queue_ms`/`exec_ms` against the server histograms, `epoch` against
/// swap events.
struct AccessLogEntry {
  uint64_t trace_id = 0;       ///< 0 = request carried no trace context.
  std::string peer;            ///< "ip:port" of the requesting client.
  std::string type;            ///< Request kind ("query", "batch").
  std::string algorithm;       ///< Algorithm that served it (planner's pick
                               ///< when the query ran under --algorithm=auto).
  std::string planner_reason;  ///< Planner rule that fired; empty when the
                               ///< algorithm was fixed by config or request.
  uint32_t k = 0;              ///< Paths requested (batch: query count).
  double queue_ms = 0.0;       ///< Admission-queue wait.
  double exec_ms = 0.0;        ///< Engine execution wall time.
  api::StatusCode status = api::StatusCode::kOk;
  uint64_t epoch = 0;          ///< Serving-state epoch that answered.
  std::string shed_reason;     ///< Non-empty when admission shed the request.
};

struct AccessLogOptions {
  std::string path;                       ///< JSONL output file (required).
  size_t rotate_bytes = 64u << 20;        ///< Rotate to `path.1` past this.
  size_t buffer_bytes = 64u << 10;        ///< Flush threshold.
};

/// Buffered JSONL access log with size-based rotation.
///
/// Lines are formatted under a mutex into an in-memory buffer and flushed
/// when the buffer passes `buffer_bytes` — a request never waits on disk in
/// the common case. `Flush()` forces the buffer out (the server calls it on
/// drain so no line is lost on a clean exit). When the file would grow past
/// `rotate_bytes` the current file is renamed to `path.1` (replacing any
/// previous rotation) and a fresh file is started.
class AccessLog {
 public:
  /// Opens (appends to) the log file; fails if it cannot be created.
  static Result<std::unique_ptr<AccessLog>> Open(AccessLogOptions options);

  ~AccessLog();
  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  /// Appends one line; thread-safe. Write errors are sticky and reported
  /// by the next Flush().
  void Write(const AccessLogEntry& entry);

  /// Flushes buffered lines to disk. Returns the first sticky error, if
  /// any.
  Status Flush();

  /// Lines accepted since open (telemetry; includes buffered ones).
  uint64_t lines_written() const;

 private:
  explicit AccessLog(AccessLogOptions options, std::FILE* file,
                     size_t existing_bytes);

  void FlushLocked();
  void RotateLocked();

  const AccessLogOptions options_;
  mutable std::mutex mu_;
  std::FILE* file_;          // Owned; null after a failed rotation.
  std::string buffer_;
  size_t file_bytes_;        // Bytes already in the current file.
  uint64_t lines_ = 0;
  Status error_ = Status::Ok();
};

}  // namespace kpj::server

#endif  // KPJ_SERVER_ACCESS_LOG_H_
