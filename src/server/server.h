#ifndef KPJ_SERVER_SERVER_H_
#define KPJ_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/api.h"
#include "api/wire.h"
#include "core/engine.h"
#include "core/kpj_instance.h"
#include "server/access_log.h"
#include "server/rolling_window.h"
#include "util/shutdown_signal.h"
#include "util/socket.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/timer.h"

namespace kpj::server {

/// One immutable serving generation: the instance, its engine, and the
/// metadata responses report. Hot swap builds a new ServingState in the
/// background and flips the server's shared_ptr; requests snapshot the
/// pointer once, so an in-flight query finishes entirely on the state it
/// started with — answers never mix epochs, and the old engine (plus its
/// caches) dies with its last reference.
struct ServingState {
  KpjInstance instance;
  /// Built after `instance` is at its final address (the engine keeps
  /// references into it; ServingState is always heap-allocated and never
  /// moved).
  std::unique_ptr<KpjEngine> engine;
  /// Server-level swap generation (1 = initial load, +1 per swap). This is
  /// the `epoch` every QueryResponse carries.
  uint64_t epoch = 1;
  std::string graph_path;

  explicit ServingState(KpjInstance inst) : instance(std::move(inst)) {}
  ServingState(const ServingState&) = delete;
  ServingState& operator=(const ServingState&) = delete;

  /// Loads a graph file (.gr = DIMACS text, else binary — stored hub
  /// labels are attached automatically), optionally attaches a landmark
  /// index (remapped into the stored layout), selects `config.oracle`,
  /// and builds the engine. Version-4 files are mmap'd instead of copied:
  /// the state serves borrowed arrays out of the page cache, so startup
  /// and swap cost is independent of graph size (one checksum pass when
  /// `trusted` is false, O(1) when true) and concurrent server processes
  /// share the mapped pages.
  static Result<std::shared_ptr<ServingState>> Load(
      const std::string& graph_path, const std::string& landmarks_path,
      const api::EngineConfig& config, uint64_t epoch, bool trusted = false);
};

/// Admission control in front of the engine pool: `slots` concurrent
/// executions (one per engine worker, so the engine's internal queue stays
/// empty and queue time is measured *here*, where it can be deducted from
/// the deadline) plus a bounded wait queue. Arrivals past the queue bound
/// are shed immediately; waiters whose deadline expires before a slot
/// frees are shed with their queue-time budget exhausted. Both outcomes
/// surface as kOverloaded — queueing is never unbounded.
class AdmissionController {
 public:
  AdmissionController(unsigned slots, size_t max_queue)
      : slots_(slots), max_queue_(max_queue) {}

  enum class Outcome {
    kAdmitted,
    kQueueFull,          ///< Shed at arrival: wait queue at its bound.
    kDeadlineExhausted,  ///< Shed while waiting: queue time ate the deadline.
  };

  /// Blocks until a slot frees (at most `deadline_ms` when positive;
  /// indefinitely at 0 = unbounded deadline). On admission `*queue_ms` is
  /// the time spent waiting. Pair every kAdmitted with one Release().
  Outcome Admit(double deadline_ms, double* queue_ms);

  void Release();

  uint64_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

 private:
  const unsigned slots_;
  const size_t max_queue_;
  std::mutex mutex_;
  std::condition_variable slot_free_;
  unsigned active_ = 0;
  size_t waiting_ = 0;
  std::atomic<uint64_t> in_flight_{0};
};

struct KpjServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = kernel-assigned; read back with port().
  /// listen(2) backlog for not-yet-accepted connections.
  int backlog = 64;
  /// Bound on queries waiting for an engine slot; arrivals past it are
  /// shed with kOverloaded.
  size_t max_queue = 16;
  /// Largest request frame accepted (protects against hostile prefixes).
  size_t max_frame_bytes = 16 << 20;
  /// Engine configuration for the initial state and every swap.
  api::EngineConfig engine;
  /// Initial graph (required) and optional landmark index.
  std::string graph_path;
  std::string landmarks_path;
  /// Structured JSONL access log (one line per query/batch request);
  /// empty = disabled. Rotates to `<path>.1` past the byte bound.
  std::string access_log_path;
  size_t access_log_rotate_bytes = 64u << 20;
  /// Skip section-checksum verification when mapping v4 graph files (both
  /// at startup and on swap), making those loads O(1). Only for files the
  /// operator generated; corrupt trusted files are NOT detected.
  bool trusted_graphs = false;
};

/// The kpjd service core: a length-prefixed JSON request server over
/// KpjEngine with admission control, graceful drain, and hot instance
/// swap. The daemon binary (tools/kpjd.cc) is a thin flag wrapper; tests
/// drive this class directly on a loopback port.
class KpjServer {
 public:
  explicit KpjServer(KpjServerOptions options);
  ~KpjServer();

  KpjServer(const KpjServer&) = delete;
  KpjServer& operator=(const KpjServer&) = delete;

  /// Loads the initial serving state, binds the listener, and starts the
  /// accept loop. Returns only after the server is reachable.
  Status Start();

  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }

  /// Begins graceful drain: stop accepting connections and new queries,
  /// let admitted queries finish and be answered. Idempotent; safe from
  /// signal handlers via ShutdownSignal::Notify on drain_signal().
  void RequestDrain();

  /// The drain broadcast; kpjd points its SIGTERM/SIGINT handlers here.
  ShutdownSignal& drain_signal() { return drain_; }

  bool draining() const { return drain_.triggered(); }

  /// Blocks until drain completes: accept loop exited, every connection
  /// closed, all in-flight queries answered.
  void Wait();

  /// Loads `request.graph` (+ optional landmarks) into a fresh
  /// ServingState and flips the serving pointer. In-flight queries finish
  /// on the old state; the flip itself drops no queries. Swaps serialize.
  Result<api::SwapInfo> Swap(const api::SwapRequest& request);

  /// Current serving state (snapshot; safe to hold across a swap).
  std::shared_ptr<ServingState> state() const;

  /// Engine metrics with the server's own series spliced in
  /// (server_accepted/rejected/shed/drained, queue-time histogram).
  std::string MetricsJson() const;
  std::string MetricsPrometheus() const;

  /// Rolling-window (last 60 s) gauges served by the `stats` request.
  api::StatsInfo Stats() const;

  /// The access log, or null when disabled. Exposed for tests and the
  /// daemon's shutdown path; Wait() already flushes it on drain.
  AccessLog* access_log() const { return access_log_.get(); }

 private:
  /// Per-connection context threaded through request handling: the peer
  /// label for access-log lines, and the accept timestamp so the first
  /// traced request on the connection can emit a server.accept span
  /// retroactively (the trace id is only known after parsing).
  struct ConnContext {
    std::string peer;
    int64_t accept_us = 0;  ///< Trace-clock time the connection landed.
    bool first_request = true;
  };

  /// Accept loop: poll {listener, drain}; one thread per connection.
  void AcceptLoop();
  /// Connection loop: poll {socket, drain}; length-prefixed frames in,
  /// one response frame per request.
  void ConnectionLoop(Socket socket);

  api::ResponseEnvelope Handle(const api::RequestEnvelope& request,
                               ConnContext& conn);
  api::ResponseEnvelope HandleQuery(const api::RequestEnvelope& request,
                                    ConnContext& conn);
  api::ResponseEnvelope HandleBatch(const api::RequestEnvelope& request,
                                    ConnContext& conn);
  api::ResponseEnvelope HandleMetrics(const api::RequestEnvelope& request);
  api::ResponseEnvelope HandleHealth(const api::RequestEnvelope& request);
  api::ResponseEnvelope HandleSwap(const api::RequestEnvelope& request);
  api::ResponseEnvelope HandleStats(const api::RequestEnvelope& request);

  /// Runs one query through admission + the engine on a state snapshot.
  /// `trace_id` tags the server.queue / server.execute spans and rides
  /// into the engine (see core QueryContext).
  api::QueryResponse RunAdmitted(const std::shared_ptr<ServingState>& state,
                                 const api::QueryRequest& request,
                                 double batch_deadline_ms, uint64_t trace_id);

  /// Span collection for requests that asked for their spans back
  /// (`trace.collect`). The global recorder is enabled while at least one
  /// collecting request is in flight (and left alone if something else —
  /// a test, a future --trace flag — had already enabled it); End harvests
  /// the spans carrying `trace_id` and clears the recorder once the last
  /// collector leaves.
  void BeginSpanCollection();
  std::vector<api::TraceSpanWire> EndSpanCollection(uint64_t trace_id);

  /// Writes one access-log line (no-op when the log is disabled).
  void LogAccess(AccessLogEntry entry);

  const KpjServerOptions options_;
  Socket listener_;
  uint16_t port_ = 0;
  Timer uptime_;

  mutable std::mutex state_mutex_;
  std::shared_ptr<ServingState> state_;
  /// Serializes Swap() calls (the flip itself is under state_mutex_).
  std::mutex swap_mutex_;
  std::atomic<uint64_t> next_epoch_{2};

  std::unique_ptr<AdmissionController> admission_;
  ShutdownSignal drain_;

  std::thread accept_thread_;
  std::mutex threads_mutex_;
  struct Connection {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::vector<Connection> connections_;

  struct Metrics {
    Counter accepted;  ///< Queries admitted to the engine.
    Counter rejected;  ///< Malformed / invalid / unavailable requests.
    Counter shed;      ///< Queries shed with kOverloaded.
    Counter drained;   ///< In-flight queries answered after drain began.
    LatencyHistogram queue_time;  ///< Admission-queue wait per query.
    LatencyHistogram swap_ms;     ///< Hot-swap load time per Swap().
  };
  Metrics metrics_;

  std::unique_ptr<AccessLog> access_log_;  ///< Null when disabled.
  RollingWindow window_;

  /// Span-collection refcount (see BeginSpanCollection). trace_was_enabled_
  /// remembers whether something outside the server had the recorder on, so
  /// the last collector out does not stomp an external trace session.
  mutable std::mutex trace_mu_;
  int collecting_ = 0;
  bool trace_was_enabled_ = false;
};

}  // namespace kpj::server

#endif  // KPJ_SERVER_SERVER_H_
