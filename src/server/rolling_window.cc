#include "server/rolling_window.h"

#include <chrono>

namespace kpj::server {
namespace {

int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

RollingWindow::RollingWindow()
    : origin_ns_(MonotonicNanos()), slots_(kWindowSeconds) {}

int64_t RollingWindow::NowSeconds() const {
  return (MonotonicNanos() - origin_ns_) / 1'000'000'000;
}

RollingWindow::Slot& RollingWindow::SlotForNow(int64_t now_s) {
  Slot& slot = slots_[static_cast<size_t>(now_s) % slots_.size()];
  if (slot.stamp.load(std::memory_order_acquire) != now_s) {
    // The slot still holds data from `now_s - 60` (or is fresh). First
    // writer of the new second resets it; laggards that raced past the
    // stamp check write into the freshly reset slot, off by one second at
    // worst.
    std::lock_guard<std::mutex> lock(slot.reset_mu);
    if (slot.stamp.load(std::memory_order_relaxed) != now_s) {
      slot.requests.Reset();
      slot.shed.Reset();
      slot.errors.Reset();
      slot.latency.Reset();
      slot.stamp.store(now_s, std::memory_order_release);
    }
  }
  return slot;
}

void RollingWindow::Record(double latency_ms, bool shed, bool error) {
  Slot& slot = SlotForNow(NowSeconds());
  slot.requests.Increment();
  if (shed) slot.shed.Increment();
  if (error) slot.errors.Increment();
  slot.latency.Record(latency_ms);
}

RollingSnapshot RollingWindow::Snapshot() const {
  RollingSnapshot snap;
  snap.window_s = kWindowSeconds;
  int64_t now_s = NowSeconds();
  int64_t oldest = now_s - static_cast<int64_t>(kWindowSeconds) + 1;
  if (oldest < 0) oldest = 0;

  LatencyHistogram merged;
  std::vector<uint64_t> per_second;
  per_second.reserve(kWindowSeconds);
  bool any = false;
  for (int64_t s = oldest; s <= now_s; ++s) {
    const Slot& slot = slots_[static_cast<size_t>(s) % slots_.size()];
    if (slot.stamp.load(std::memory_order_acquire) != s) {
      // Slot represents some other second (stale or never used): inside
      // the window that means "no traffic this second".
      if (any) per_second.push_back(0);
      continue;
    }
    uint64_t requests = slot.requests.value();
    snap.requests += requests;
    snap.shed += slot.shed.value();
    snap.errors += slot.errors.value();
    merged.Merge(slot.latency);
    // Suppress leading empty buckets (before the first live one) so a
    // young server does not report a window padded with zeros.
    if (any || requests > 0) {
      any = true;
      per_second.push_back(requests);
    }
  }
  snap.qps =
      static_cast<double>(snap.requests) / static_cast<double>(kWindowSeconds);
  snap.latency_mean_ms = merged.Mean();
  snap.latency_p50_ms = merged.Percentile(50.0);
  snap.latency_p90_ms = merged.Percentile(90.0);
  snap.latency_p99_ms = merged.Percentile(99.0);
  snap.latency_max_ms = merged.max_ms();
  snap.per_second = std::move(per_second);
  return snap;
}

}  // namespace kpj::server
