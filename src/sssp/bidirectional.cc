#include "sssp/bidirectional.h"

#include <algorithm>

#include "util/logging.h"

namespace kpj {

BidirectionalDijkstra::Side::Side(const Graph& g)
    : graph(g),
      dist(g.NumNodes(), kInfLength),
      parent(g.NumNodes(), kInvalidNode),
      settled(g.NumNodes()),
      heap(g.NumNodes()) {}

void BidirectionalDijkstra::Side::Reset(NodeId origin) {
  dist.NewEpoch();
  parent.NewEpoch();
  settled.ClearAll();
  heap.Clear();
  dist.Set(origin, 0);
  heap.Push(origin, 0);
}

NodeId BidirectionalDijkstra::Side::SettleNext(SearchStats* stats) {
  if (heap.empty()) return kInvalidNode;
  NodeId u = heap.Pop();
  settled.Insert(u);
  ++stats->nodes_settled;
  PathLength du = dist.Get(u);
  for (const OutEdge& e : graph.OutEdges(u)) {
    ++stats->edges_relaxed;
    if (settled.Contains(e.to)) continue;
    PathLength nd = du + e.weight;
    if (nd < dist.Get(e.to)) {
      dist.Set(e.to, nd);
      parent.Set(e.to, u);
      heap.PushOrDecrease(e.to, nd);
    }
  }
  return u;
}

BidirectionalDijkstra::BidirectionalDijkstra(const Graph& graph,
                                             const Graph& reverse)
    : forward_(graph), backward_(reverse) {
  KPJ_CHECK(graph.NumNodes() == reverse.NumNodes());
}

PathLength BidirectionalDijkstra::Run(NodeId source, NodeId target) {
  KPJ_CHECK(source < forward_.graph.NumNodes());
  KPJ_CHECK(target < forward_.graph.NumNodes());
  stats_.Reset();
  meet_ = kInvalidNode;
  best_ = kInfLength;
  if (source == target) {
    meet_ = source;
    best_ = 0;
    // Reset sides so LastPath reconstruction sees consistent state.
    forward_.Reset(source);
    backward_.Reset(target);
    return 0;
  }
  forward_.Reset(source);
  backward_.Reset(target);

  // Alternate; stop when the sum of the two frontier minima reaches the
  // best meeting distance (standard stopping criterion).
  for (;;) {
    PathLength f_top = forward_.heap.empty() ? kInfLength
                                             : forward_.heap.TopKey();
    PathLength b_top = backward_.heap.empty() ? kInfLength
                                              : backward_.heap.TopKey();
    if (f_top == kInfLength && b_top == kInfLength) break;
    if (best_ != kInfLength && SatAdd(f_top, b_top) >= best_) break;

    Side& side = (f_top <= b_top) ? forward_ : backward_;
    Side& other = (f_top <= b_top) ? backward_ : forward_;
    NodeId u = side.SettleNext(&stats_);
    if (u == kInvalidNode) continue;
    // u is settled on `side`; if `other` has a label for it, we have a
    // candidate meeting point.
    PathLength du = side.dist.Get(u);
    PathLength dv = other.dist.Get(u);
    if (dv != kInfLength) {
      PathLength total = SatAdd(du, dv);
      if (total < best_) {
        best_ = total;
        meet_ = u;
      }
    }
  }
  return best_;
}

std::vector<NodeId> BidirectionalDijkstra::LastPath() const {
  std::vector<NodeId> path;
  if (meet_ == kInvalidNode) return path;
  // Forward half (source .. meet).
  for (NodeId cur = meet_; cur != kInvalidNode;
       cur = forward_.parent.Get(cur)) {
    path.push_back(cur);
    KPJ_DCHECK(path.size() <= forward_.graph.NumNodes());
  }
  std::reverse(path.begin(), path.end());
  // Backward half (meet .. target), skipping the meeting node itself.
  for (NodeId cur = backward_.parent.Get(meet_); cur != kInvalidNode;
       cur = backward_.parent.Get(cur)) {
    path.push_back(cur);
    KPJ_DCHECK(path.size() <= 2 * forward_.graph.NumNodes());
  }
  return path;
}

}  // namespace kpj
