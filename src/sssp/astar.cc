#include "sssp/astar.h"

#include <algorithm>

#include "util/logging.h"

namespace kpj {

AStar::AStar(const Graph& graph, const Heuristic* heuristic)
    : graph_(graph),
      heuristic_(heuristic),
      dist_(graph.NumNodes(), kInfLength),
      parent_(graph.NumNodes(), kInvalidNode),
      settled_(graph.NumNodes()),
      heap_(graph.NumNodes()) {
  KPJ_CHECK(heuristic_ != nullptr);
}

NodeId AStar::Loop(NodeId stop_node, const EpochSet* stop_set) {
  while (!heap_.empty()) {
    NodeId u = heap_.Pop();
    settled_.Insert(u);
    ++stats_.nodes_settled;
    if (algo_ != nullptr) {
      ++algo_->heap_pops;
      ++algo_->node_expansions;
    }
    if (u == stop_node) return u;
    if (stop_set != nullptr && stop_set->Contains(u)) return u;
    PathLength du = dist_.Get(u);
    for (const OutEdge& e : graph_.OutEdges(u)) {
      ++stats_.edges_relaxed;
      if (settled_.Contains(e.to)) continue;  // Consistent heuristic.
      PathLength nd = du + e.weight;
      if (nd < dist_.Get(e.to)) {
        dist_.Set(e.to, nd);
        parent_.Set(e.to, u);
        if (algo_ != nullptr) {
          if (heap_.Contains(e.to)) {
            ++algo_->heap_decrease_keys;
          } else {
            ++algo_->heap_pushes;
          }
        }
        heap_.PushOrDecrease(e.to, SatAdd(nd, heuristic_->Estimate(e.to)));
      }
    }
  }
  return kInvalidNode;
}

PathLength AStar::RunToTarget(NodeId source, NodeId target) {
  dist_.NewEpoch();
  parent_.NewEpoch();
  settled_.ClearAll();
  heap_.Clear();
  stats_.Reset();
  KPJ_CHECK(source < graph_.NumNodes());
  dist_.Set(source, 0);
  if (algo_ != nullptr) ++algo_->heap_pushes;
  heap_.Push(source, heuristic_->Estimate(source));
  NodeId hit = Loop(target, nullptr);
  return hit == kInvalidNode ? kInfLength : dist_.Get(target);
}

NodeId AStar::RunToAnyTarget(
    std::span<const std::pair<NodeId, PathLength>> sources,
    const EpochSet& targets) {
  dist_.NewEpoch();
  parent_.NewEpoch();
  settled_.ClearAll();
  heap_.Clear();
  stats_.Reset();
  for (const auto& [node, d0] : sources) {
    KPJ_CHECK(node < graph_.NumNodes());
    if (d0 < dist_.Get(node)) {
      dist_.Set(node, d0);
      parent_.Set(node, kInvalidNode);
      if (algo_ != nullptr) {
        if (heap_.Contains(node)) {
          ++algo_->heap_decrease_keys;
        } else {
          ++algo_->heap_pushes;
        }
      }
      heap_.PushOrDecrease(node, SatAdd(d0, heuristic_->Estimate(node)));
    }
  }
  return Loop(kInvalidNode, &targets);
}

std::vector<NodeId> AStar::PathTo(NodeId u) const {
  std::vector<NodeId> path;
  if (dist_.Get(u) == kInfLength) return path;
  NodeId cur = u;
  while (cur != kInvalidNode) {
    path.push_back(cur);
    KPJ_DCHECK(path.size() <= graph_.NumNodes()) << "parent cycle";
    cur = parent_.Get(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace kpj
