#ifndef KPJ_SSSP_MONOTONE_DIJKSTRA_H_
#define KPJ_SSSP_MONOTONE_DIJKSTRA_H_

#include <type_traits>
#include <vector>

#include "graph/graph.h"
#include "util/indexed_heap.h"
#include "util/radix_heap.h"
#include "util/types.h"

namespace kpj {

/// Full-SSSP Dijkstra tuned for offline index construction (landmark
/// tables, hub-label searches): no early stopping, no epoch bookkeeping,
/// no cancellation — just distances and parents as fast as possible.
///
/// With the repository's integer Weight the priority queue is a monotone
/// one-level RadixHeap with lazy deletion (Dijkstra pops keys in
/// non-decreasing order, exactly the radix heap's contract); a build with
/// floating-point weights would fall back to the IndexedHeap used by the
/// online searches, selected at compile time. Either queue produces the
/// same exact distances, so indexes built through this engine are
/// byte-identical to ones built on the general Dijkstra engine.
class MonotoneDijkstra {
 public:
  /// Keeps a reference to `graph`; the graph must outlive the engine.
  explicit MonotoneDijkstra(const Graph& graph)
      : graph_(graph),
        dist_(graph.NumNodes(), kInfLength),
        parent_(graph.NumNodes(), kInvalidNode) {
    if constexpr (!kUseRadix) heap_.Reset(graph.NumNodes());
  }

  /// Full single-source run; overwrites all labels (O(n) reset).
  void Run(NodeId source) {
    dist_.assign(dist_.size(), kInfLength);
    parent_.assign(parent_.size(), kInvalidNode);
    if (source >= dist_.size()) return;
    dist_[source] = 0;
    if constexpr (kUseRadix) {
      radix_.Clear();
      radix_.Push(source, 0);
      while (!radix_.empty()) {
        auto [u, key] = radix_.Pop();
        if (key != dist_[u]) continue;  // Stale (lazily deleted) entry.
        Expand(u, key);
      }
    } else {
      heap_.Clear();
      heap_.Push(source, 0);
      while (!heap_.empty()) {
        auto [u, key] = heap_.PopWithKey();
        Expand(u, key);
      }
    }
  }

  PathLength Distance(NodeId v) const { return dist_[v]; }
  NodeId Parent(NodeId v) const { return parent_[v]; }
  const std::vector<PathLength>& dist() const { return dist_; }

  /// Whether this build (Weight type) runs on the radix heap.
  static constexpr bool UsesRadixHeap() { return kUseRadix; }

 private:
  static constexpr bool kUseRadix = std::is_integral_v<Weight>;

  void Expand(NodeId u, PathLength du) {
    for (const OutEdge& e : graph_.OutEdges(u)) {
      PathLength nd = du + e.weight;
      if (nd < dist_[e.to]) {
        dist_[e.to] = nd;
        parent_[e.to] = u;
        if constexpr (kUseRadix) {
          radix_.Push(e.to, nd);
        } else {
          heap_.PushOrDecrease(e.to, nd);
        }
      }
    }
  }

  const Graph& graph_;
  std::vector<PathLength> dist_;
  std::vector<NodeId> parent_;
  RadixHeap radix_;               // Integer-weight fast path.
  IndexedHeap<PathLength> heap_;  // Float-weight fallback.
};

}  // namespace kpj

#endif  // KPJ_SSSP_MONOTONE_DIJKSTRA_H_
