#include "sssp/dijkstra.h"

#include <algorithm>

#include "util/logging.h"

namespace kpj {

Dijkstra::Dijkstra(const Graph& graph)
    : graph_(graph),
      dist_(graph.NumNodes(), kInfLength),
      parent_(graph.NumNodes(), kInvalidNode),
      settled_(graph.NumNodes()),
      heap_(graph.NumNodes()) {}

void Dijkstra::Prepare(
    std::span<const std::pair<NodeId, PathLength>> sources) {
  dist_.NewEpoch();
  parent_.NewEpoch();
  settled_.ClearAll();
  heap_.Clear();
  stats_.Reset();
  for (const auto& [node, d0] : sources) {
    KPJ_CHECK(node < graph_.NumNodes());
    if (d0 < dist_.Get(node)) {
      dist_.Set(node, d0);
      parent_.Set(node, kInvalidNode);
      if (algo_ != nullptr) {
        if (heap_.Contains(node)) {
          ++algo_->heap_decrease_keys;
        } else {
          ++algo_->heap_pushes;
        }
      }
      heap_.PushOrDecrease(node, d0);
    }
  }
}

NodeId Dijkstra::Loop(NodeId stop_node, const EpochSet* stop_set) {
  while (!heap_.empty()) {
    if (cancel_ != nullptr && cancel_->ShouldStop()) return kInvalidNode;
    auto [u, du] = heap_.PopWithKey();
    settled_.Insert(u);
    ++stats_.nodes_settled;
    if (algo_ != nullptr) {
      ++algo_->heap_pops;
      ++algo_->node_expansions;
    }
    if (u == stop_node) return u;
    if (stop_set != nullptr && stop_set->Contains(u)) return u;
    for (const OutEdge& e : graph_.OutEdges(u)) {
      ++stats_.edges_relaxed;
      if (settled_.Contains(e.to)) continue;
      PathLength nd = du + e.weight;
      if (nd < dist_.Get(e.to)) {
        dist_.Set(e.to, nd);
        parent_.Set(e.to, u);
        if (algo_ != nullptr) {
          if (heap_.Contains(e.to)) {
            ++algo_->heap_decrease_keys;
          } else {
            ++algo_->heap_pushes;
          }
        }
        heap_.PushOrDecrease(e.to, nd);
      }
    }
  }
  return kInvalidNode;
}

void Dijkstra::Run(NodeId source) {
  std::pair<NodeId, PathLength> seed[] = {{source, 0}};
  Prepare(seed);
  Loop(kInvalidNode, nullptr);
}

void Dijkstra::RunMultiSource(
    std::span<const std::pair<NodeId, PathLength>> sources) {
  Prepare(sources);
  Loop(kInvalidNode, nullptr);
}

PathLength Dijkstra::RunToTarget(NodeId source, NodeId target) {
  std::pair<NodeId, PathLength> seed[] = {{source, 0}};
  Prepare(seed);
  NodeId hit = Loop(target, nullptr);
  return hit == kInvalidNode ? kInfLength : dist_.Get(target);
}

NodeId Dijkstra::RunToAnyTarget(NodeId source, const EpochSet& targets) {
  std::pair<NodeId, PathLength> seed[] = {{source, 0}};
  Prepare(seed);
  return Loop(kInvalidNode, &targets);
}

std::vector<NodeId> Dijkstra::PathTo(NodeId u) const {
  std::vector<NodeId> path;
  if (!Settled(u) && dist_.Get(u) == kInfLength) return path;
  NodeId cur = u;
  while (cur != kInvalidNode) {
    path.push_back(cur);
    KPJ_DCHECK(path.size() <= graph_.NumNodes()) << "parent cycle";
    cur = parent_.Get(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

SptResult Dijkstra::Snapshot() const {
  SptResult out;
  const NodeId n = graph_.NumNodes();
  out.dist.resize(n);
  out.parent.resize(n);
  for (NodeId u = 0; u < n; ++u) {
    out.dist[u] = dist_.Get(u);
    out.parent[u] = parent_.Get(u);
  }
  return out;
}

SptResult SingleSourceShortestPaths(const Graph& graph, NodeId source) {
  Dijkstra engine(graph);
  engine.Run(source);
  return engine.Snapshot();
}

SptResult DistancesToSet(const Graph& reverse_graph,
                         std::span<const NodeId> targets) {
  Dijkstra engine(reverse_graph);
  std::vector<std::pair<NodeId, PathLength>> seeds;
  seeds.reserve(targets.size());
  for (NodeId t : targets) seeds.emplace_back(t, 0);
  engine.RunMultiSource(seeds);
  return engine.Snapshot();
}

}  // namespace kpj
