#ifndef KPJ_SSSP_ASTAR_H_
#define KPJ_SSSP_ASTAR_H_

#include <span>
#include <utility>
#include <vector>

#include "core/instrumentation.h"
#include "graph/graph.h"
#include "sssp/spt.h"
#include "util/epoch_array.h"
#include "util/indexed_heap.h"
#include "util/types.h"

namespace kpj {

/// Admissible (and, for all implementations in this repository, consistent)
/// lower bound on the remaining distance from a node to the search target.
///
/// Implementations: ZeroHeuristic (degenerates A* to Dijkstra, the
/// "no landmark" mode of Section 6), LandmarkTargetBound (Eq. (2)),
/// and the SPT-augmented bounds of Sections 5.2/5.3.
class Heuristic {
 public:
  virtual ~Heuristic() = default;

  /// Lower bound on the distance from `u` to the target (set).
  virtual PathLength Estimate(NodeId u) const = 0;
};

/// The all-zeroes heuristic.
class ZeroHeuristic final : public Heuristic {
 public:
  PathLength Estimate(NodeId) const override { return 0; }
};

/// Reusable A* engine (goal-directed Dijkstra) over a fixed graph.
///
/// Keys are `g(u) + h(u)`; with a consistent heuristic every node is
/// settled at most once, matching the paper's uses of A* [16].
class AStar {
 public:
  /// The engine keeps references to `graph` and `heuristic`; both must
  /// outlive it. The heuristic can be swapped per run.
  AStar(const Graph& graph, const Heuristic* heuristic);

  /// Replaces the heuristic used by subsequent runs.
  void SetHeuristic(const Heuristic* heuristic) { heuristic_ = heuristic; }

  /// Installs an optional per-query counter sink (null disables counting).
  /// The pointee must outlive every subsequent run.
  void SetAlgoStats(AlgoStats* algo) { algo_ = algo; }

  /// Point-to-point search; returns the distance or kInfLength.
  PathLength RunToTarget(NodeId source, NodeId target);

  /// Multi-source point-to-set search; stops when the first member of
  /// `targets` is settled and returns it (kInvalidNode if unreachable).
  NodeId RunToAnyTarget(std::span<const std::pair<NodeId, PathLength>> sources,
                        const EpochSet& targets);

  bool Settled(NodeId u) const { return settled_.Contains(u); }
  PathLength Distance(NodeId u) const { return dist_.Get(u); }
  NodeId Parent(NodeId u) const { return parent_.Get(u); }

  /// Root-first path to `u`, empty if unsettled.
  std::vector<NodeId> PathTo(NodeId u) const;

  const SearchStats& stats() const { return stats_; }

 private:
  NodeId Loop(NodeId stop_node, const EpochSet* stop_set);

  const Graph& graph_;
  const Heuristic* heuristic_;
  EpochArray<PathLength> dist_;
  EpochArray<NodeId> parent_;
  EpochSet settled_;
  IndexedHeap<PathLength> heap_;
  SearchStats stats_;
  AlgoStats* algo_ = nullptr;
};

}  // namespace kpj

#endif  // KPJ_SSSP_ASTAR_H_
