#include "sssp/incremental_search.h"

#include <algorithm>

#include "util/logging.h"

namespace kpj {

IncrementalSearch::IncrementalSearch(const Graph& graph,
                                     const Heuristic* heuristic)
    : graph_(graph),
      heuristic_(heuristic),
      dist_(graph.NumNodes(), kInfLength),
      parent_(graph.NumNodes(), kInvalidNode),
      settled_(graph.NumNodes()),
      heap_(graph.NumNodes()) {
  KPJ_CHECK(heuristic_ != nullptr);
}

void IncrementalSearch::Initialize(
    std::span<const std::pair<NodeId, PathLength>> sources) {
  dist_.NewEpoch();
  parent_.NewEpoch();
  settled_.ClearAll();
  heap_.Clear();
  touched_.clear();
  stats_.Reset();
  num_settled_ = 0;
  for (const auto& [node, d0] : sources) {
    KPJ_CHECK(node < graph_.NumNodes());
    if (d0 < dist_.Get(node)) {
      Touch(node);
      dist_.Set(node, d0);
      parent_.Set(node, kInvalidNode);
      if (algo_ != nullptr) {
        if (heap_.Contains(node)) {
          ++algo_->heap_decrease_keys;
        } else {
          ++algo_->heap_pushes;
        }
      }
      heap_.PushOrDecrease(node, SatAdd(d0, heuristic_->Estimate(node)));
    }
  }
}

void IncrementalSearch::Settle(NodeId u,
                               const std::function<void(NodeId)>& on_settle) {
  settled_.Insert(u);
  ++num_settled_;
  ++stats_.nodes_settled;
  if (algo_ != nullptr) {
    ++algo_->heap_pops;
    ++algo_->node_expansions;
  }
  if (on_settle) on_settle(u);
  PathLength du = dist_.Get(u);
  for (const OutEdge& e : graph_.OutEdges(u)) {
    ++stats_.edges_relaxed;
    if (settled_.Contains(e.to)) continue;
    PathLength nd = du + e.weight;
    if (nd < dist_.Get(e.to)) {
      Touch(e.to);
      dist_.Set(e.to, nd);
      parent_.Set(e.to, u);
      if (algo_ != nullptr) {
        if (heap_.Contains(e.to)) {
          ++algo_->heap_decrease_keys;
        } else {
          ++algo_->heap_pushes;
        }
      }
      heap_.PushOrDecrease(e.to, SatAdd(nd, heuristic_->Estimate(e.to)));
    }
  }
}

void IncrementalSearch::AdvanceToBound(
    PathLength bound, const std::function<void(NodeId)>& on_settle) {
  while (!heap_.empty() && heap_.TopKey() <= bound) {
    if (cancel_ != nullptr && cancel_->ShouldStop()) return;
    Settle(heap_.Pop(), on_settle);
  }
}

bool IncrementalSearch::AdvanceUntilSettled(
    NodeId stop, const std::function<void(NodeId)>& on_settle) {
  if (Settled(stop)) return true;
  while (!heap_.empty()) {
    if (cancel_ != nullptr && cancel_->ShouldStop()) return false;
    NodeId u = heap_.Pop();
    Settle(u, on_settle);
    if (u == stop) return true;
  }
  return false;
}

NodeId IncrementalSearch::AdvanceUntilAnySettled(
    const EpochSet& stops, const std::function<void(NodeId)>& on_settle) {
  while (!heap_.empty()) {
    if (cancel_ != nullptr && cancel_->ShouldStop()) return kInvalidNode;
    NodeId u = heap_.Pop();
    Settle(u, on_settle);
    if (stops.Contains(u)) return u;
  }
  return kInvalidNode;
}

void IncrementalSearch::ExportSnapshot(SearchSnapshot* out) const {
  out->touched = touched_;
  out->dist.clear();
  out->parent.clear();
  out->settled.clear();
  out->dist.reserve(touched_.size());
  out->parent.reserve(touched_.size());
  out->settled.reserve(touched_.size());
  for (NodeId u : touched_) {
    KPJ_DCHECK(dist_.Stamped(u));
    out->dist.push_back(dist_.Get(u));
    out->parent.push_back(parent_.Get(u));
    out->settled.push_back(settled_.Contains(u) ? 1 : 0);
  }
  heap_.ExportRaw(&out->heap);
  out->num_settled = num_settled_;
}

void IncrementalSearch::RestoreSnapshot(const SearchSnapshot& snap) {
  KPJ_CHECK(snap.dist.size() == snap.touched.size());
  KPJ_CHECK(snap.parent.size() == snap.touched.size());
  KPJ_CHECK(snap.settled.size() == snap.touched.size());
  dist_.NewEpoch();
  parent_.NewEpoch();
  settled_.ClearAll();
  stats_.Reset();
  touched_ = snap.touched;
  for (size_t i = 0; i < snap.touched.size(); ++i) {
    NodeId u = snap.touched[i];
    KPJ_CHECK(u < graph_.NumNodes());
    dist_.Set(u, snap.dist[i]);
    parent_.Set(u, snap.parent[i]);
    if (snap.settled[i] != 0) settled_.Insert(u);
  }
  heap_.RestoreRaw(snap.heap);
  num_settled_ = snap.num_settled;
}

std::vector<NodeId> IncrementalSearch::PathTo(NodeId u) const {
  std::vector<NodeId> path;
  if (!Settled(u)) return path;
  NodeId cur = u;
  while (cur != kInvalidNode) {
    path.push_back(cur);
    KPJ_DCHECK(path.size() <= graph_.NumNodes()) << "parent cycle";
    cur = parent_.Get(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace kpj
