#ifndef KPJ_SSSP_BIDIRECTIONAL_H_
#define KPJ_SSSP_BIDIRECTIONAL_H_

#include <vector>

#include "graph/graph.h"
#include "sssp/spt.h"
#include "util/epoch_array.h"
#include "util/indexed_heap.h"
#include "util/types.h"

namespace kpj {

/// Bidirectional Dijkstra for point-to-point queries: alternating forward
/// and backward searches meeting in the middle, exploring ~2·(π r/2)²
/// instead of π r² area on metric-like graphs.
///
/// Substrate extension (not used by the KPJ solvers, whose searches are
/// point-to-set); provided for the substrate benchmark suite and as a
/// general utility alongside Dijkstra/AStar.
class BidirectionalDijkstra {
 public:
  /// `reverse` must be `graph.Reverse()`; both must outlive the engine.
  BidirectionalDijkstra(const Graph& graph, const Graph& reverse);

  /// Shortest distance from `source` to `target` (kInfLength if none).
  PathLength Run(NodeId source, NodeId target);

  /// The corresponding path of the last Run (source..target), empty when
  /// unreachable.
  std::vector<NodeId> LastPath() const;

  const SearchStats& stats() const { return stats_; }

 private:
  struct Side {
    explicit Side(const Graph& g);
    const Graph& graph;
    EpochArray<PathLength> dist;
    EpochArray<NodeId> parent;
    EpochSet settled;
    IndexedHeap<PathLength> heap;

    void Reset(NodeId origin);
    /// Settles one node; returns it (kInvalidNode if exhausted).
    NodeId SettleNext(SearchStats* stats);
  };

  Side forward_;
  Side backward_;
  SearchStats stats_;
  NodeId meet_ = kInvalidNode;
  PathLength best_ = kInfLength;
};

}  // namespace kpj

#endif  // KPJ_SSSP_BIDIRECTIONAL_H_
