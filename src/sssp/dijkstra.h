#ifndef KPJ_SSSP_DIJKSTRA_H_
#define KPJ_SSSP_DIJKSTRA_H_

#include <span>
#include <utility>
#include <vector>

#include "core/instrumentation.h"
#include "graph/graph.h"
#include "sssp/spt.h"
#include "util/cancellation.h"
#include "util/epoch_array.h"
#include "util/indexed_heap.h"
#include "util/types.h"

namespace kpj {

/// Reusable Dijkstra engine over a fixed graph.
///
/// Workspace (distance labels, parents, heap) is epoch-reset between runs,
/// so issuing thousands of per-query searches costs O(touched) rather than
/// O(n) each. Supports single- and multi-source runs, full or early-stopped
/// at a target / target set.
class Dijkstra {
 public:
  /// The engine keeps a reference to `graph`; the graph must outlive it.
  explicit Dijkstra(const Graph& graph);

  /// Installs a cooperative cancellation token polled once per settled
  /// node; a tripped token makes the current run stop early, leaving
  /// partially computed labels. nullptr (the default) disables polling.
  /// Callers must check the token after a run before trusting distances.
  void SetCancelToken(const CancellationToken* cancel) { cancel_ = cancel; }

  /// Installs an optional per-query counter sink. When null (the default)
  /// the search skips all AlgoStats bookkeeping. The pointee must stay
  /// valid for the duration of every subsequent run; callers that point at
  /// stack storage must clear this before that storage dies.
  void SetAlgoStats(AlgoStats* algo) { algo_ = algo; }

  /// Full single-source shortest paths from `source`.
  void Run(NodeId source);

  /// Full multi-source run: each (node, initial_distance) pair seeds the
  /// queue. This is how the virtual destination node of Section 3 is
  /// realized without materializing it: running on the reverse graph with
  /// all of `V_T` at distance 0 yields distance-to-category for every node.
  void RunMultiSource(std::span<const std::pair<NodeId, PathLength>> sources);

  /// Early-stopping point-to-point run; returns the shortest distance or
  /// kInfLength if unreachable.
  PathLength RunToTarget(NodeId source, NodeId target);

  /// Early-stopping point-to-set run; stops when the first node of
  /// `targets` is settled and returns it (kInvalidNode if none reachable).
  NodeId RunToAnyTarget(NodeId source, const EpochSet& targets);

  /// True if `u` was settled (has a final distance) in the last run.
  bool Settled(NodeId u) const { return settled_.Contains(u); }

  /// Distance label of `u` from the last run (kInfLength if untouched).
  /// Final only for settled nodes; tentative for frontier nodes.
  PathLength Distance(NodeId u) const { return dist_.Get(u); }

  /// Parent of `u` in the shortest path tree (kInvalidNode for roots and
  /// untouched nodes).
  NodeId Parent(NodeId u) const { return parent_.Get(u); }

  /// Root-first path to `u`, empty if `u` was not settled.
  std::vector<NodeId> PathTo(NodeId u) const;

  /// Dense snapshot of the last run (O(n)).
  SptResult Snapshot() const;

  const SearchStats& stats() const { return stats_; }
  const Graph& graph() const { return graph_; }

 private:
  void Prepare(std::span<const std::pair<NodeId, PathLength>> sources);
  /// Core loop; stops after settling `stop_node` (pass kInvalidNode to run
  /// to exhaustion) or any member of `stop_set` (pass nullptr to disable).
  NodeId Loop(NodeId stop_node, const EpochSet* stop_set);

  const Graph& graph_;
  EpochArray<PathLength> dist_;
  EpochArray<NodeId> parent_;
  EpochSet settled_;
  IndexedHeap<PathLength> heap_;
  SearchStats stats_;
  const CancellationToken* cancel_ = nullptr;
  AlgoStats* algo_ = nullptr;
};

/// One-shot convenience: full SSSP snapshot from `source`.
SptResult SingleSourceShortestPaths(const Graph& graph, NodeId source);

/// One-shot convenience: distances from every node TO the target set, i.e.
/// a multi-source run over `graph.Reverse()` supplied by the caller as
/// `reverse_graph`. dist[u] is the length of the shortest path u -> any
/// target in the forward graph.
SptResult DistancesToSet(const Graph& reverse_graph,
                         std::span<const NodeId> targets);

}  // namespace kpj

#endif  // KPJ_SSSP_DIJKSTRA_H_
