#ifndef KPJ_SSSP_SPT_H_
#define KPJ_SSSP_SPT_H_

#include <vector>

#include "util/types.h"

namespace kpj {

/// Dense shortest-path-tree snapshot: distance and parent per node.
/// `dist[u] == kInfLength` marks unreached nodes; roots have
/// `parent[u] == kInvalidNode`.
struct SptResult {
  std::vector<PathLength> dist;
  std::vector<NodeId> parent;

  bool Reached(NodeId u) const { return dist[u] != kInfLength; }
};

/// Walks parent pointers from `node` up to a root and returns the node
/// sequence root-first. Returns an empty vector if `node` is unreached.
std::vector<NodeId> ExtractRootPath(const SptResult& spt, NodeId node);

/// Counters shared by all search routines; cheap enough to always collect.
struct SearchStats {
  uint64_t nodes_settled = 0;
  uint64_t edges_relaxed = 0;

  void Reset() { *this = SearchStats{}; }
  void Accumulate(const SearchStats& other) {
    nodes_settled += other.nodes_settled;
    edges_relaxed += other.edges_relaxed;
  }
};

}  // namespace kpj

#endif  // KPJ_SSSP_SPT_H_
