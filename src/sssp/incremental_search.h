#ifndef KPJ_SSSP_INCREMENTAL_SEARCH_H_
#define KPJ_SSSP_INCREMENTAL_SEARCH_H_

#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "sssp/astar.h"
#include "sssp/spt.h"
#include "util/cancellation.h"
#include "util/epoch_array.h"
#include "util/indexed_heap.h"
#include "util/types.h"

namespace kpj {

/// Portable image of an IncrementalSearch's complete mutable state: every
/// labelled node with its distance/parent/settled flag plus the frontier
/// heap's raw slot layout. Restoring a snapshot reproduces the search
/// bit-for-bit — the same future pop order, ties included — which is what
/// makes cross-query SPT caching byte-identical to a cold run.
struct SearchSnapshot {
  std::vector<NodeId> touched;     // labelled nodes, first-touch order
  std::vector<PathLength> dist;    // parallel to `touched`
  std::vector<NodeId> parent;      // parallel to `touched`
  std::vector<uint8_t> settled;    // parallel to `touched` (1 = settled)
  std::vector<std::pair<uint32_t, PathLength>> heap;  // raw slot order
  size_t num_settled = 0;

  /// Approximate heap footprint, for cache byte accounting.
  size_t MemoryBytes() const {
    return touched.capacity() * sizeof(NodeId) +
           dist.capacity() * sizeof(PathLength) +
           parent.capacity() * sizeof(NodeId) +
           settled.capacity() +
           heap.capacity() * sizeof(std::pair<uint32_t, PathLength>) +
           sizeof(SearchSnapshot);
  }
};

/// Resumable best-first (A*) search whose frontier survives between calls.
///
/// This is the engine behind both online index structures of Section 5:
///  * SPT_P (Alg. 6) initializes it on the reverse graph from all of `V_T`
///    and advances until the query source is settled — the settled set IS
///    the partial shortest path tree.
///  * SPT_I (Alg. 7) initializes it on the forward graph from `s` and
///    repeatedly advances to the growing bound τ; settled nodes form the
///    incremental tree, and by Prop. 5.2 they cover every node on any
///    s-to-`V_T` path of length <= τ.
///
/// Keys are `g(u) + h(u)` with a consistent heuristic, so settled nodes are
/// final and the frontier key is monotonically non-decreasing.
class IncrementalSearch {
 public:
  /// Keeps references to `graph` and `heuristic`; both must outlive this.
  IncrementalSearch(const Graph& graph, const Heuristic* heuristic);

  /// Swaps the heuristic for the next Initialize (per-query bounds reuse
  /// one engine and its O(n) workspace).
  void SetHeuristic(const Heuristic* heuristic) {
    KPJ_CHECK(heuristic != nullptr);
    heuristic_ = heuristic;
  }

  /// Installs a cooperative cancellation token polled once per settled
  /// node in the Advance* loops; a tripped token makes them return early
  /// (AdvanceUntilSettled false / AdvanceUntilAnySettled kInvalidNode, as
  /// if exhausted). nullptr (the default) disables polling. Callers must
  /// check the token after an advance before trusting the outcome.
  void SetCancelToken(const CancellationToken* cancel) { cancel_ = cancel; }

  /// Installs an optional per-query counter sink (null disables counting).
  /// The pointee must outlive every subsequent Initialize/Advance call.
  void SetAlgoStats(AlgoStats* algo) { algo_ = algo; }

  /// Resets all state and seeds the frontier. Settle callbacks fire later,
  /// during Advance* calls, never here.
  void Initialize(std::span<const std::pair<NodeId, PathLength>> sources);

  /// Settles nodes while the minimum frontier key is `<= bound`, invoking
  /// `on_settle` (if non-null) for each newly settled node.
  void AdvanceToBound(PathLength bound,
                      const std::function<void(NodeId)>& on_settle = nullptr);

  /// Settles nodes until `stop` is settled or the frontier is exhausted.
  /// Returns true if `stop` was settled.
  bool AdvanceUntilSettled(NodeId stop,
                           const std::function<void(NodeId)>& on_settle =
                               nullptr);

  /// Settles nodes until some member of `stops` is settled; returns that
  /// node, or kInvalidNode if the frontier is exhausted first.
  NodeId AdvanceUntilAnySettled(const EpochSet& stops,
                                const std::function<void(NodeId)>& on_settle =
                                    nullptr);

  bool Settled(NodeId u) const { return settled_.Contains(u); }

  /// Exact distance from the seed set for settled nodes; tentative label
  /// for frontier nodes; kInfLength otherwise.
  PathLength Distance(NodeId u) const { return dist_.Get(u); }

  NodeId Parent(NodeId u) const { return parent_.Get(u); }

  /// Root-first path to a settled node (empty if unsettled).
  std::vector<NodeId> PathTo(NodeId u) const;

  /// Minimum key in the frontier, kInfLength when exhausted.
  PathLength FrontierKey() const {
    return heap_.empty() ? kInfLength : heap_.TopKey();
  }

  /// True when no further node can ever be settled: every node not yet
  /// settled is unreachable from the seed set.
  bool Exhausted() const { return heap_.empty(); }

  size_t num_settled() const { return num_settled_; }
  const SearchStats& stats() const { return stats_; }

  /// Captures the complete mutable search state (labels, settled set,
  /// frontier) in O(touched nodes). The snapshot is independent of this
  /// object and can outlive it.
  void ExportSnapshot(SearchSnapshot* out) const;

  /// Replaces all state with a snapshot previously captured from a search
  /// over the same graph with a heuristic producing identical estimates.
  /// Per-call SearchStats are zeroed: they report work actually performed
  /// after the restore, not work embodied in the adopted tree.
  void RestoreSnapshot(const SearchSnapshot& snap);

 private:
  void Settle(NodeId u, const std::function<void(NodeId)>& on_settle);

  /// Records the first labelling of `u` for snapshot export.
  void Touch(NodeId u) {
    if (!dist_.Stamped(u)) touched_.push_back(u);
  }

  const Graph& graph_;
  const Heuristic* heuristic_;
  EpochArray<PathLength> dist_;
  EpochArray<NodeId> parent_;
  EpochSet settled_;
  IndexedHeap<PathLength> heap_;
  std::vector<NodeId> touched_;
  SearchStats stats_;
  size_t num_settled_ = 0;
  const CancellationToken* cancel_ = nullptr;
  AlgoStats* algo_ = nullptr;
};

}  // namespace kpj

#endif  // KPJ_SSSP_INCREMENTAL_SEARCH_H_
