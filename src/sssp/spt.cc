#include "sssp/spt.h"

#include <algorithm>

#include "util/logging.h"

namespace kpj {

std::vector<NodeId> ExtractRootPath(const SptResult& spt, NodeId node) {
  std::vector<NodeId> path;
  if (node >= spt.dist.size() || !spt.Reached(node)) return path;
  NodeId cur = node;
  while (cur != kInvalidNode) {
    path.push_back(cur);
    KPJ_DCHECK(path.size() <= spt.dist.size()) << "parent cycle";
    cur = spt.parent[cur];
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace kpj
