#ifndef KPJ_INDEX_LANDMARK_INDEX_H_
#define KPJ_INDEX_LANDMARK_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/reorder.h"
#include "index/distance_oracle.h"
#include "util/array_ref.h"
#include "util/status.h"
#include "util/types.h"

namespace kpj {

/// How landmark nodes are picked.
enum class LandmarkSelection {
  /// Farthest-point selection — the paper's choice (footnote 3): random
  /// start, then iteratively the node farthest from the landmark set.
  kFarthest,
  /// Uniformly random nodes; the classic cheap baseline from the ALT
  /// literature [16]. Exposed for the selection-strategy ablation.
  kRandom,
};

/// Options for offline landmark index construction (paper §4.2).
struct LandmarkIndexOptions {
  /// Number of landmarks |L|; the paper settles on 16 (Fig. 6(a)).
  uint32_t num_landmarks = 16;
  /// Seed for the random start node of farthest-point selection.
  uint64_t seed = 42;
  LandmarkSelection selection = LandmarkSelection::kFarthest;
  /// Worker threads for the table-filling Dijkstras (each landmark's runs
  /// are independent; workers keep their own SSSP workspaces and write
  /// disjoint table slots). Distances are exact, so the built index is
  /// byte-identical for every thread count. Landmark *selection* stays
  /// sequential: farthest-point selection is an inherently serial chain.
  unsigned threads = 1;
};

/// Offline landmark (ALT) distance index (paper §4.2, [16]).
///
/// Stores, for each landmark `w`, the exact shortest distances δ(w, v)
/// (forward table) and δ(v, w) (reverse table) for every node `v`. From the
/// triangle inequality over these tables it derives lower bounds on
/// arbitrary shortest distances; LandmarkSetBound (target_bound.h) builds
/// the per-query Eq. (2) bound on top of this index.
///
/// Landmarks are chosen by farthest-point selection as in the paper
/// (footnote 3): a random start, then iteratively the node farthest from
/// the current landmark set.
///
/// Construction is O(|L| (m + n log n)); storage O(|L| n) — both as stated
/// in the paper's "Remarks & Time Complexity".
class LandmarkIndex final : public DistanceOracle {
 public:
  /// Builds the index. `reverse_graph` must be `graph.Reverse()` (passed in
  /// so callers can reuse an already-built reverse graph).
  static LandmarkIndex Build(const Graph& graph, const Graph& reverse_graph,
                             const LandmarkIndexOptions& options = {});

  /// Constructs an empty (useless) index; Estimate-style bounds are all 0.
  LandmarkIndex() = default;

  uint32_t num_landmarks() const {
    return static_cast<uint32_t>(landmarks_.size());
  }
  const std::vector<NodeId>& landmarks() const { return landmarks_; }

  // DistanceOracle interface -------------------------------------------
  OracleKind kind() const override { return OracleKind::kAlt; }
  NodeId num_nodes() const override { return num_nodes_; }
  /// FNV-1a over the landmark set and table shape — cheap (O(|L|)) and
  /// distinct across differently-built indexes with overwhelming
  /// probability (different landmark node sets).
  uint64_t Identity() const override;
  std::shared_ptr<const SetAggregates> ComputeSetAggregates(
      std::span<const NodeId> set, BoundDirection direction) const override;
  std::unique_ptr<Heuristic> MakeSetBound(
      std::shared_ptr<const SetAggregates> aggregates,
      BoundDirection direction, NodeId scoring_node,
      uint32_t max_active) const override;
  // ---------------------------------------------------------------------

  /// δ(landmark_l, v); kInfLength if unreachable.
  PathLength DistFromLandmark(uint32_t l, NodeId v) const {
    return Widen(dist_from_[Slot(l, v)]);
  }

  /// δ(v, landmark_l); kInfLength if unreachable.
  PathLength DistToLandmark(uint32_t l, NodeId v) const {
    return Widen(dist_to_[Slot(l, v)]);
  }

  /// Lower bound on the point-to-point shortest distance dist(u, v).
  /// Returns kInfLength when the tables prove v unreachable from u.
  PathLength LowerBound(NodeId u, NodeId v) const override;

  /// Returns a copy of this index with every node id mapped through
  /// `permutation` (old id -> new id): landmark ids are translated and the
  /// node-major table rows permuted. Bounds are invariant:
  /// `Remap(p).LowerBound(p.ToNew(u), p.ToNew(v)) == LowerBound(u, v)`.
  /// An empty permutation returns an unchanged copy; otherwise
  /// `permutation.size()` must equal `num_nodes()`.
  LandmarkIndex Remap(const Permutation& permutation) const;

  /// Serialization (binary, with magic/version).
  Status Save(const std::string& path) const;
  static Result<LandmarkIndex> Load(const std::string& path);

  /// Assembles an index from pre-built arrays — the zero-copy v4 load path
  /// (the distance tables typically borrow mmap-ed sections; the landmark
  /// id list is tiny and always copied). Validates table shapes and
  /// landmark ids; both checks are O(|L|) + O(1).
  static Result<LandmarkIndex> FromParts(NodeId num_nodes,
                                         std::vector<NodeId> landmarks,
                                         ArrayRef<uint32_t> dist_from,
                                         ArrayRef<uint32_t> dist_to);

  /// Raw table access for the v4 section writer.
  std::span<const uint32_t> dist_from() const { return dist_from_.view(); }
  std::span<const uint32_t> dist_to() const { return dist_to_.view(); }

  bool Equals(const LandmarkIndex& other) const {
    return num_nodes_ == other.num_nodes_ && landmarks_ == other.landmarks_ &&
           dist_from_ == other.dist_from_ && dist_to_ == other.dist_to_;
  }

 private:
  friend class LandmarkSetBound;

  /// Distances are stored saturated to 32 bits to halve the table memory;
  /// kUnreachable32 marks infinity. Road-network distances fit easily.
  static constexpr uint32_t kUnreachable32 = UINT32_MAX;

  static PathLength Widen(uint32_t d) {
    return d == kUnreachable32 ? kInfLength : d;
  }
  static uint32_t Narrow(PathLength d) {
    return d >= kUnreachable32 ? kUnreachable32 : static_cast<uint32_t>(d);
  }

  // Node-major layout: one query evaluates all |L| landmarks for a node,
  // so keeping a node's row contiguous costs 1-2 cache lines per Estimate
  // instead of |L| scattered reads.
  size_t Slot(uint32_t l, NodeId v) const {
    return static_cast<size_t>(v) * landmarks_.size() + l;
  }

  NodeId num_nodes_ = 0;
  std::vector<NodeId> landmarks_;
  // Owned-or-borrowed (borrowed = spans into an mmap-ed v4 file).
  ArrayRef<uint32_t> dist_from_;  // n x |L|, node-major
  ArrayRef<uint32_t> dist_to_;    // n x |L|
};

}  // namespace kpj

#endif  // KPJ_INDEX_LANDMARK_INDEX_H_
