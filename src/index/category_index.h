#ifndef KPJ_INDEX_CATEGORY_INDEX_H_
#define KPJ_INDEX_CATEGORY_INDEX_H_

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/reorder.h"
#include "util/array_ref.h"
#include "util/status.h"
#include "util/types.h"

namespace kpj {

/// Offline inverted index over node categories (paper §2: "we assume that
/// an inverted index is offline built on the categories of nodes such that
/// V_T can be efficiently retrieved online").
///
/// A category models a *conceptual node*: the set of physical nodes that
/// carry a POI of that category. Nodes may belong to any number of
/// categories.
///
/// The index has two storage modes:
///  * mutable (the default): per-category/per-node vectors, grown by
///    AddCategory/Assign;
///  * frozen: both directions held as CSR arrays that may borrow spans of
///    an mmap-ed v4 file (FromParts). A frozen index rejects mutation;
///    Remap thaws into a mutable deep copy.
/// Lookups behave identically in both modes.
class CategoryIndex {
 public:
  /// Creates an index over the node universe `[0, num_nodes)`.
  explicit CategoryIndex(NodeId num_nodes = 0);

  NodeId num_nodes() const { return num_nodes_; }
  size_t NumCategories() const { return names_.size(); }

  /// Registers a category; returns the existing id if the name is taken.
  /// Must not be called on a frozen index.
  CategoryId AddCategory(std::string name);

  /// Looks up a category id by name.
  std::optional<CategoryId> Find(std::string_view name) const;

  const std::string& Name(CategoryId category) const;

  /// Assigns `node` to `category`; duplicate assignments are ignored.
  /// Must not be called on a frozen index.
  void Assign(NodeId node, CategoryId category);

  /// All nodes of `category` (`V_T`), sorted ascending, no duplicates.
  std::span<const NodeId> Nodes(CategoryId category) const;

  /// Number of physical nodes in `category` (`|V_T|`).
  size_t Size(CategoryId category) const { return Nodes(category).size(); }

  /// Categories a node belongs to, sorted ascending.
  std::span<const CategoryId> CategoriesOf(NodeId node) const;

  /// True if `node` belongs to `category`. O(log |V_categories(node)|).
  bool Belongs(NodeId node, CategoryId category) const;

  /// Returns a copy of this index with every node id mapped through
  /// `permutation` (old id -> new id), so the index stays usable after a
  /// cache-locality relabeling of the graph (graph/reorder.h). Category
  /// ids, names, and set sizes are unchanged; node lists are re-sorted. An
  /// empty permutation returns an unchanged copy; otherwise
  /// `permutation.size()` must equal `num_nodes()`. The result is always
  /// mutable (a frozen source is thawed into owned storage).
  CategoryIndex Remap(const Permutation& permutation) const;

  /// Binary (de)serialization with magic/version validation, so POI
  /// assignments can ship alongside a saved graph.
  Status Save(const std::string& path) const;
  static Result<CategoryIndex> Load(const std::string& path);

  /// Assembles a frozen index from CSR arrays — the zero-copy v4 load
  /// path. `names_blob`/`name_offsets` describe the concatenated category
  /// names (C+1 offsets); names are always copied into owned strings (they
  /// are tiny and the name hash map must live on the heap anyway). The
  /// four CSR arrays typically borrow mmap-ed sections. With `validate`
  /// set, monotonicity, sortedness, and id ranges are fully checked;
  /// without it only O(1)+O(C) shape checks run.
  static Result<CategoryIndex> FromParts(NodeId num_nodes,
                                         std::span<const char> names_blob,
                                         std::span<const uint64_t> name_offsets,
                                         ArrayRef<uint64_t> cat_offsets,
                                         ArrayRef<NodeId> cat_nodes,
                                         ArrayRef<uint64_t> node_offsets,
                                         ArrayRef<CategoryId> node_cats,
                                         bool validate);

  /// True when backed by frozen (possibly borrowed) CSR storage.
  bool frozen() const { return frozen_; }

  bool Equals(const CategoryIndex& other) const;

 private:
  NodeId num_nodes_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, CategoryId> by_name_;

  // Mutable-mode storage.
  std::vector<std::vector<NodeId>> nodes_by_category_;
  std::vector<std::vector<CategoryId>> categories_by_node_;

  // Frozen-mode storage: CSR in both directions.
  bool frozen_ = false;
  ArrayRef<uint64_t> cat_offsets_;    // C + 1
  ArrayRef<NodeId> cat_nodes_;        // sum of category sizes
  ArrayRef<uint64_t> node_offsets_;   // n + 1
  ArrayRef<CategoryId> node_cats_;    // sum of per-node category counts
};

}  // namespace kpj

#endif  // KPJ_INDEX_CATEGORY_INDEX_H_
