#ifndef KPJ_INDEX_CATEGORY_INDEX_H_
#define KPJ_INDEX_CATEGORY_INDEX_H_

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/reorder.h"
#include "util/status.h"
#include "util/types.h"

namespace kpj {

/// Offline inverted index over node categories (paper §2: "we assume that
/// an inverted index is offline built on the categories of nodes such that
/// V_T can be efficiently retrieved online").
///
/// A category models a *conceptual node*: the set of physical nodes that
/// carry a POI of that category. Nodes may belong to any number of
/// categories.
class CategoryIndex {
 public:
  /// Creates an index over the node universe `[0, num_nodes)`.
  explicit CategoryIndex(NodeId num_nodes = 0);

  NodeId num_nodes() const { return num_nodes_; }
  size_t NumCategories() const { return names_.size(); }

  /// Registers a category; returns the existing id if the name is taken.
  CategoryId AddCategory(std::string name);

  /// Looks up a category id by name.
  std::optional<CategoryId> Find(std::string_view name) const;

  const std::string& Name(CategoryId category) const;

  /// Assigns `node` to `category`; duplicate assignments are ignored.
  void Assign(NodeId node, CategoryId category);

  /// All nodes of `category` (`V_T`), sorted ascending, no duplicates.
  const std::vector<NodeId>& Nodes(CategoryId category) const;

  /// Number of physical nodes in `category` (`|V_T|`).
  size_t Size(CategoryId category) const { return Nodes(category).size(); }

  /// Categories a node belongs to, sorted ascending.
  std::span<const CategoryId> CategoriesOf(NodeId node) const;

  /// True if `node` belongs to `category`. O(log |V_categories(node)|).
  bool Belongs(NodeId node, CategoryId category) const;

  /// Returns a copy of this index with every node id mapped through
  /// `permutation` (old id -> new id), so the index stays usable after a
  /// cache-locality relabeling of the graph (graph/reorder.h). Category
  /// ids, names, and set sizes are unchanged; node lists are re-sorted. An
  /// empty permutation returns an unchanged copy; otherwise
  /// `permutation.size()` must equal `num_nodes()`.
  CategoryIndex Remap(const Permutation& permutation) const;

  /// Binary (de)serialization with magic/version validation, so POI
  /// assignments can ship alongside a saved graph.
  Status Save(const std::string& path) const;
  static Result<CategoryIndex> Load(const std::string& path);

  bool Equals(const CategoryIndex& other) const {
    return num_nodes_ == other.num_nodes_ && names_ == other.names_ &&
           nodes_by_category_ == other.nodes_by_category_;
  }

 private:
  NodeId num_nodes_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, CategoryId> by_name_;
  std::vector<std::vector<NodeId>> nodes_by_category_;
  std::vector<std::vector<CategoryId>> categories_by_node_;
};

}  // namespace kpj

#endif  // KPJ_INDEX_CATEGORY_INDEX_H_
