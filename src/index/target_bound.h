#ifndef KPJ_INDEX_TARGET_BOUND_H_
#define KPJ_INDEX_TARGET_BOUND_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/instrumentation.h"
#include "index/distance_oracle.h"
#include "index/landmark_index.h"
#include "sssp/astar.h"
#include "util/types.h"

namespace kpj {

/// Per-landmark distance aggregates over a fixed node set — the O(|L|*|S|)
/// part of building a LandmarkSetBound, and a pure function of (landmark
/// tables, set, direction). Shareable across queries hitting the same
/// category: see TargetBoundCache. (BoundDirection itself lives in
/// index/distance_oracle.h with the oracle interface.)
struct LandmarkSetAggregates final : SetAggregates {
  std::vector<PathLength> min_primary;   // kToSet: min_x δ(w,x); kFromSet: min_x δ(x,w)
  std::vector<PathLength> max_secondary; // kToSet: max_x δ(x,w); kFromSet: max_x δ(w,x)

  size_t MemoryBytes() const override {
    return sizeof(LandmarkSetAggregates) +
           (min_primary.capacity() + max_secondary.capacity()) *
               sizeof(PathLength);
  }
};

/// Per-query landmark lower bound against a fixed node set (Eq. (2)).
///
/// Construction aggregates each landmark's distance to/from the set once —
/// O(|L| * |S|), the paper's "computed only once for each query" — after
/// which Estimate costs O(|L|).
///
/// For kToSet with landmark w:
///   dist(u, S) >= min_{x in S} δ(w, x) - δ(w, u)   (Eq. (2))
///   dist(u, S) >= δ(u, w) - max_{x in S} δ(x, w)
/// For kFromSet the roles of the tables swap symmetrically.
///
/// Estimate returns kInfLength when the tables prove the set unreachable.
/// A set member always gets a bound of 0.
class LandmarkSetBound final : public Heuristic {
 public:
  /// An empty `index` (zero landmarks) yields all-zero bounds: this is the
  /// "computing without landmark" mode of Section 6.
  ///
  /// Active-landmark selection (extension; classic ALT trick): when
  /// `max_active > 0` and `scoring_node` is a real node, only the
  /// `max_active` landmarks giving the best bound *at the scoring node*
  /// (typically the query source) are evaluated by Estimate — most of the
  /// bound quality at a fraction of the per-node cost. Admissibility is
  /// unaffected (any subset of valid lower bounds is a valid lower bound).
  LandmarkSetBound(const LandmarkIndex* index, std::span<const NodeId> set,
                   BoundDirection direction,
                   NodeId scoring_node = kInvalidNode,
                   uint32_t max_active = 0);

  /// Same bound built from precomputed (typically cached) set aggregates.
  /// `aggregates` must have been computed for this index and direction;
  /// active-landmark selection is still performed per query (it depends on
  /// the scoring node, which is not part of any cache key).
  LandmarkSetBound(const LandmarkIndex* index,
                   std::shared_ptr<const LandmarkSetAggregates> aggregates,
                   BoundDirection direction,
                   NodeId scoring_node = kInvalidNode,
                   uint32_t max_active = 0);

  /// The O(|L| * |S|) aggregation step, exposed for the cache.
  static std::shared_ptr<const LandmarkSetAggregates> ComputeAggregates(
      const LandmarkIndex& index, std::span<const NodeId> set,
      BoundDirection direction);

  /// Lower bound on the distance between `u` and the set, per direction.
  PathLength Estimate(NodeId u) const override;

  BoundDirection direction() const { return direction_; }

  /// Landmark slots Estimate actually evaluates.
  const std::vector<uint32_t>& active_landmarks() const { return active_; }

 private:
  void SelectActive(NodeId scoring_node, uint32_t max_active);

  /// Bound contribution of landmark slot `l` at node `u`; kInfLength means
  /// a proof that the set is unreachable from/to `u`.
  PathLength EstimateOne(uint32_t l, NodeId u) const;

  const LandmarkIndex* index_;
  BoundDirection direction_;
  // Aggregates over the set per landmark; shared when cached. "primary"
  // powers the difference whose minuend is a set aggregate; "secondary"
  // the one whose subtrahend is a set aggregate. See EstimateOne.
  std::shared_ptr<const LandmarkSetAggregates> agg_;
  std::vector<uint32_t> active_;          // Landmark slots to evaluate.
};

/// Monotonic operation counters plus the current byte footprint.
struct TargetBoundCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  size_t bytes = 0;
  size_t entries = 0;
};

/// LRU cache of SetAggregates keyed by (oracle identity, epoch, direction,
/// node set) — the category-bound cache: repeated KPJ queries against the
/// same POI category pay the per-set aggregation once. Thread-safe. The
/// oracle's Identity() is part of the key, so aggregates computed by one
/// oracle (or one oracle's contents) are never served to another. Epoch
/// invalidation is lazy (the epoch is part of the key) plus eager via
/// PurgeOlderEpochs.
class TargetBoundCache {
 public:
  explicit TargetBoundCache(size_t budget_bytes);

  TargetBoundCache(const TargetBoundCache&) = delete;
  TargetBoundCache& operator=(const TargetBoundCache&) = delete;

  std::shared_ptr<const SetAggregates> Lookup(uint64_t oracle_identity,
                                              uint64_t epoch,
                                              BoundDirection direction,
                                              std::span<const NodeId> set);

  void Insert(uint64_t oracle_identity, uint64_t epoch,
              BoundDirection direction, std::span<const NodeId> set,
              std::shared_ptr<const SetAggregates> aggregates);

  /// Eagerly removes every entry older than `current_epoch`; removals
  /// count as evictions.
  void PurgeOlderEpochs(uint64_t current_epoch);

  TargetBoundCacheStats StatsSnapshot() const;
  void ResetStats();

 private:
  struct Key {
    uint64_t oracle;  // DistanceOracle::Identity()
    uint64_t epoch;
    BoundDirection direction;
    std::vector<NodeId> set;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& key) const;
  };
  using LruList =
      std::list<std::pair<Key, std::shared_ptr<const SetAggregates>>>;

  static size_t EntryBytes(const Key& key, const SetAggregates& agg);

  size_t budget_bytes_;
  mutable std::mutex mu_;
  LruList lru_;  // front = most recently used
  std::unordered_map<Key, LruList::iterator, KeyHash> index_;
  size_t bytes_ = 0;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

/// Builds the oracle's set bound, serving the per-set aggregation
/// (O(|L| * |S|) for ALT, a label merge for hub labels) from `cache` when
/// possible. With a null cache this is ComputeSetAggregates + MakeSetBound
/// directly. Cache hits/misses are counted into `algo` (if non-null) —
/// and, either way, the returned bound is byte-identical to an uncached
/// one: aggregates are a pure function of the key.
std::unique_ptr<Heuristic> MakeCachedSetBound(
    const DistanceOracle* oracle, std::span<const NodeId> set,
    BoundDirection direction, NodeId scoring_node, uint32_t max_active,
    TargetBoundCache* cache, uint64_t epoch, AlgoStats* algo);

}  // namespace kpj

#endif  // KPJ_INDEX_TARGET_BOUND_H_
