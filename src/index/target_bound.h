#ifndef KPJ_INDEX_TARGET_BOUND_H_
#define KPJ_INDEX_TARGET_BOUND_H_

#include <span>
#include <vector>

#include "index/landmark_index.h"
#include "sssp/astar.h"
#include "util/types.h"

namespace kpj {

/// Direction of a node-to-set distance bound.
enum class BoundDirection {
  /// Bound on dist(u, S) = min over x in S of dist(u, x). This is the
  /// paper's lb(u, V_T) of Eq. (2): the set is the destination category.
  kToSet,
  /// Bound on dist(S, u) = min over x in S of dist(x, u). Used by the
  /// reverse-oriented SPT_I search (bounding distance *from* the source
  /// side, §5.3/§6) and by GKPJ's multi-node source.
  kFromSet,
};

/// Per-query landmark lower bound against a fixed node set (Eq. (2)).
///
/// Construction aggregates each landmark's distance to/from the set once —
/// O(|L| * |S|), the paper's "computed only once for each query" — after
/// which Estimate costs O(|L|).
///
/// For kToSet with landmark w:
///   dist(u, S) >= min_{x in S} δ(w, x) - δ(w, u)   (Eq. (2))
///   dist(u, S) >= δ(u, w) - max_{x in S} δ(x, w)
/// For kFromSet the roles of the tables swap symmetrically.
///
/// Estimate returns kInfLength when the tables prove the set unreachable.
/// A set member always gets a bound of 0.
class LandmarkSetBound final : public Heuristic {
 public:
  /// An empty `index` (zero landmarks) yields all-zero bounds: this is the
  /// "computing without landmark" mode of Section 6.
  ///
  /// Active-landmark selection (extension; classic ALT trick): when
  /// `max_active > 0` and `scoring_node` is a real node, only the
  /// `max_active` landmarks giving the best bound *at the scoring node*
  /// (typically the query source) are evaluated by Estimate — most of the
  /// bound quality at a fraction of the per-node cost. Admissibility is
  /// unaffected (any subset of valid lower bounds is a valid lower bound).
  LandmarkSetBound(const LandmarkIndex* index, std::span<const NodeId> set,
                   BoundDirection direction,
                   NodeId scoring_node = kInvalidNode,
                   uint32_t max_active = 0);

  /// Lower bound on the distance between `u` and the set, per direction.
  PathLength Estimate(NodeId u) const override;

  BoundDirection direction() const { return direction_; }

  /// Landmark slots Estimate actually evaluates.
  const std::vector<uint32_t>& active_landmarks() const { return active_; }

 private:
  /// Bound contribution of landmark slot `l` at node `u`; kInfLength means
  /// a proof that the set is unreachable from/to `u`.
  PathLength EstimateOne(uint32_t l, NodeId u) const;

  const LandmarkIndex* index_;
  BoundDirection direction_;
  // Aggregates over the set per landmark. "primary" powers the difference
  // whose minuend is a set aggregate; "secondary" the one whose subtrahend
  // is a set aggregate. See EstimateOne for the exact formulas.
  std::vector<PathLength> min_primary_;   // kToSet: min_x δ(w,x); kFromSet: min_x δ(x,w)
  std::vector<PathLength> max_secondary_; // kToSet: max_x δ(x,w); kFromSet: max_x δ(w,x)
  std::vector<uint32_t> active_;          // Landmark slots to evaluate.
};

}  // namespace kpj

#endif  // KPJ_INDEX_TARGET_BOUND_H_
