#ifndef KPJ_INDEX_HUB_LABEL_INDEX_H_
#define KPJ_INDEX_HUB_LABEL_INDEX_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/reorder.h"
#include "index/distance_oracle.h"
#include "util/array_ref.h"
#include "util/status.h"
#include "util/types.h"

namespace kpj {

/// Options for offline hub-label construction.
struct HubLabelOptions {
  /// Sample SSSPs used to score nodes for the contraction order (a
  /// subtree-size betweenness approximation; more seeds = better order =
  /// smaller labels, at linear extra build cost).
  uint32_t order_seeds = 16;
  /// Worker threads for the batched pruned-label searches. The batch
  /// schedule is fixed (independent of the thread count), every search in
  /// a batch prunes against the same committed snapshot, and results are
  /// committed in rank order — so the built index is byte-identical for
  /// any thread count, like the landmark build.
  unsigned threads = 1;
  /// Hubs labeled per synchronous batch. Must be >= 1. Part of the label
  /// contents (larger batches prune a little less), NOT a tuning knob to
  /// vary per machine: changing it changes the (still correct) labels.
  uint32_t batch_size = 16;
  /// Optional build-progress observer, invoked from the calling thread:
  /// `stage` is "order" (seed SSSPs) or "label" (hubs committed), with
  /// `done` out of `total` units finished. Purely observational — the
  /// built index is byte-identical with or without it.
  std::function<void(const char* stage, uint64_t done, uint64_t total)>
      progress;
};

/// 2-hop hub labeling (pruned landmark labeling over a contraction-style
/// node order) — the label-based distance oracle of ROADMAP item 3, in the
/// spirit of Zhu et al.'s hierarchical 2-hop labels.
///
/// Every node u stores an out-label {(h, δ(u,h))} and an in-label
/// {(h, δ(h,u))}, both sorted by hub rank; by the 2-hop cover property the
/// minimum of δ(u,h) + δ(h,v) over common hubs equals δ(u,v) *exactly*.
/// LowerBound is therefore the true distance (tightness 1.0), and set
/// bounds are exact node-to-set distances.
///
/// Entries reference hubs by rank, not node id, so Remap only permutes
/// label rows and the rank table — bounds are invariant under reorder.
///
/// Distances inside labels are stored as uint32 (like the landmark
/// tables); construction checks that no finite distance exceeds that
/// range. Unreachability is represented by absence (no common hub), never
/// by a sentinel entry.
class HubLabelIndex final : public DistanceOracle {
 public:
  /// One label entry: `rank` of the hub and the exact distance between
  /// the labeled node and that hub (direction depends on the label side).
  struct Entry {
    uint32_t rank;
    uint32_t dist;
    friend bool operator==(const Entry&, const Entry&) = default;
  };

  /// Builds the index. `reverse_graph` must be `graph.Reverse()`.
  /// Deterministic in `options` (thread count excluded).
  static HubLabelIndex Build(const Graph& graph, const Graph& reverse_graph,
                             const HubLabelOptions& options = {});

  /// Constructs an empty (useless) index; bounds degenerate to all-zero.
  HubLabelIndex() = default;

  // DistanceOracle interface -------------------------------------------
  OracleKind kind() const override { return OracleKind::kHubLabel; }
  NodeId num_nodes() const override { return num_nodes_; }
  uint64_t Identity() const override;
  /// Exact δ(u, v); kInfLength iff v is unreachable from u.
  PathLength LowerBound(NodeId u, NodeId v) const override;
  std::shared_ptr<const SetAggregates> ComputeSetAggregates(
      std::span<const NodeId> set, BoundDirection direction) const override;
  std::unique_ptr<Heuristic> MakeSetBound(
      std::shared_ptr<const SetAggregates> aggregates,
      BoundDirection direction, NodeId scoring_node,
      uint32_t max_active) const override;
  // ---------------------------------------------------------------------

  /// Alias for LowerBound: for hub labels the bound is the distance.
  PathLength Distance(NodeId u, NodeId v) const { return LowerBound(u, v); }

  /// Returns a copy with every node id mapped through `permutation`
  /// (old id -> new id). Since entries address hubs by rank, only the
  /// label rows and the rank-of-node table move:
  /// `Remap(p).LowerBound(p.ToNew(u), p.ToNew(v)) == LowerBound(u, v)`.
  HubLabelIndex Remap(const Permutation& permutation) const;

  bool Equals(const HubLabelIndex& other) const {
    return num_nodes_ == other.num_nodes_ &&
           rank_of_node_ == other.rank_of_node_ &&
           in_offsets_ == other.in_offsets_ &&
           out_offsets_ == other.out_offsets_ &&
           in_entries_ == other.in_entries_ &&
           out_entries_ == other.out_entries_;
  }

  /// Streamed serialization with a trailing FNV-1a checksum, used for the
  /// hub-label section of version-3 graph files (graph/serialize.h).
  Status SaveToStream(std::ostream& out) const;
  static Result<HubLabelIndex> LoadFromStream(std::istream& in);

  /// Assembles an index from pre-built arrays — the zero-copy v4 load
  /// path (each ArrayRef typically borrows an mmap-ed section). `checksum`
  /// is the stored content checksum. With `validate` set, the structural
  /// invariants (rank bijection, monotone offsets, strictly rank-ascending
  /// rows) are re-checked and the checksum recomputed — O(entries) reads
  /// but no copies. Without it only O(1) shape checks run and `checksum`
  /// is taken on faith (trusted files whose section checksums already
  /// guarantee the bytes are exactly as written).
  static Result<HubLabelIndex> FromParts(
      NodeId num_nodes, ArrayRef<uint32_t> rank_of_node,
      ArrayRef<uint64_t> in_offsets, ArrayRef<Entry> in_entries,
      ArrayRef<uint64_t> out_offsets, ArrayRef<Entry> out_entries,
      uint64_t checksum, bool validate);

  /// Content checksum (FNV-1a over the label arrays) — the value written
  /// to / verified against the serialized section, and the content part of
  /// Identity(). Computed once at build/load/remap time.
  uint64_t Checksum() const { return checksum_; }

  size_t TotalEntries() const {
    return in_entries_.size() + out_entries_.size();
  }
  double AverageLabelSize() const {
    return num_nodes_ == 0
               ? 0.0
               : static_cast<double>(TotalEntries()) / (2.0 * num_nodes_);
  }
  size_t MemoryBytes() const;

  /// Out-label of `u` ({rank, δ(u, hub)}, rank-ascending).
  std::span<const Entry> OutLabel(NodeId u) const {
    return {out_entries_.data() + out_offsets_[u],
            out_entries_.data() + out_offsets_[u + 1]};
  }
  /// In-label of `u` ({rank, δ(hub, u)}, rank-ascending).
  std::span<const Entry> InLabel(NodeId u) const {
    return {in_entries_.data() + in_offsets_[u],
            in_entries_.data() + in_offsets_[u + 1]};
  }

  /// Raw array access for the v4 section writer.
  std::span<const uint32_t> rank_of_node() const {
    return rank_of_node_.view();
  }
  std::span<const uint64_t> in_offsets() const { return in_offsets_.view(); }
  std::span<const uint64_t> out_offsets() const { return out_offsets_.view(); }
  std::span<const Entry> in_entries() const { return in_entries_.view(); }
  std::span<const Entry> out_entries() const { return out_entries_.view(); }

 private:
  friend class HubSetBound;

  /// FNV-1a over all label arrays; the cached value behind Checksum().
  uint64_t ComputeChecksum() const;

  NodeId num_nodes_ = 0;
  // Owned-or-borrowed storage (borrowed = spans into an mmap-ed v4 file).
  ArrayRef<uint32_t> rank_of_node_;  // node -> contraction rank
  // CSR label storage, entries sorted by rank within each row.
  ArrayRef<uint64_t> in_offsets_;   // n + 1 (empty when n == 0)
  ArrayRef<uint64_t> out_offsets_;  // n + 1
  ArrayRef<Entry> in_entries_;
  ArrayRef<Entry> out_entries_;
  uint64_t checksum_ = 0;
};

/// Aggregates of a hub-label oracle over a node set: the rank-sorted merge
/// of the set members' labels with the per-hub minimum distance. kToSet
/// merges in-labels (hub -> set distances); kFromSet merges out-labels
/// (set -> hub distances).
struct HubSetAggregates final : SetAggregates {
  std::vector<HubLabelIndex::Entry> merged;

  size_t MemoryBytes() const override {
    return sizeof(HubSetAggregates) +
           merged.capacity() * sizeof(HubLabelIndex::Entry);
  }
};

/// Exact node-to-set distance as a Heuristic: a merge-join of the node's
/// label against the set aggregate. Being an exact distance it is both
/// admissible and consistent, and kInfLength means truly unreachable.
class HubSetBound final : public Heuristic {
 public:
  HubSetBound(const HubLabelIndex* index,
              std::shared_ptr<const HubSetAggregates> aggregates,
              BoundDirection direction);

  PathLength Estimate(NodeId u) const override;

  BoundDirection direction() const { return direction_; }

 private:
  const HubLabelIndex* index_;
  std::shared_ptr<const HubSetAggregates> agg_;
  BoundDirection direction_;
};

}  // namespace kpj

#endif  // KPJ_INDEX_HUB_LABEL_INDEX_H_
