#include "index/landmark_index.h"

#include <algorithm>
#include <fstream>
#include <memory>

#include "sssp/monotone_dijkstra.h"
#include "util/logging.h"
#include "util/concurrency.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace kpj {

LandmarkIndex LandmarkIndex::Build(const Graph& graph,
                                   const Graph& reverse_graph,
                                   const LandmarkIndexOptions& options) {
  const NodeId n = graph.NumNodes();
  KPJ_CHECK(reverse_graph.NumNodes() == n)
      << "reverse graph node count mismatch";

  LandmarkIndex index;
  index.num_nodes_ = n;
  if (n == 0 || options.num_landmarks == 0) return index;

  const uint32_t num = std::min<uint32_t>(options.num_landmarks, n);
  // Filled with stride `num` (node-major); repacked below if farthest-point
  // selection stops early on tiny graphs.
  std::vector<uint32_t> from_table(static_cast<size_t>(num) * n,
                                   kUnreachable32);
  std::vector<uint32_t> to_table(static_cast<size_t>(num) * n,
                                 kUnreachable32);

  Rng rng(options.seed);
  const bool farthest = options.selection == LandmarkSelection::kFarthest;

  if (!farthest) {
    for (uint64_t v : rng.SampleDistinct(num, n)) {
      index.landmarks_.push_back(static_cast<NodeId>(v));
    }
  } else {
    // Farthest-point selection (paper footnote 3): pick a random start
    // node, take the node farthest from it as the first landmark, then
    // iteratively take the node maximizing the minimum distance to the
    // landmark set. Distances here are forward distances from candidate
    // landmarks, which on the (bidirectional) road networks of the paper
    // are symmetric. This chain is inherently sequential — landmark l+1
    // depends on the SSSP of landmark l — so it runs on one thread; the
    // forward distances it computes are kept, and only the remaining
    // (independent) per-landmark runs are parallelized below.
    MonotoneDijkstra forward(graph);
    NodeId start = static_cast<NodeId>(rng.NextBounded(n));
    forward.Run(start);
    NodeId first = start;
    PathLength best = 0;
    for (NodeId v = 0; v < n; ++v) {
      PathLength d = forward.Distance(v);
      if (d != kInfLength && d >= best) {
        best = d;
        first = v;
      }
    }

    std::vector<PathLength> min_dist(n, kInfLength);
    NodeId next = first;
    for (uint32_t l = 0; l < num; ++l) {
      index.landmarks_.push_back(next);
      forward.Run(next);
      for (NodeId v = 0; v < n; ++v) {
        PathLength df = forward.Distance(v);
        from_table[static_cast<size_t>(v) * num + l] = Narrow(df);
        if (df < min_dist[v]) min_dist[v] = df;
      }
      // Choose the next landmark: reachable node farthest from the set.
      next = index.landmarks_.front();
      PathLength far = 0;
      for (NodeId v = 0; v < n; ++v) {
        if (min_dist[v] != kInfLength && min_dist[v] >= far &&
            min_dist[v] > 0) {
          far = min_dist[v];
          next = v;
        }
      }
      if (far == 0) break;  // Every reachable node is already a landmark.
    }
  }

  // Table filling: one backward (and, for random selection, one forward)
  // Dijkstra per landmark. The runs are independent and write disjoint
  // strided slots, so they parallelize trivially; each worker keeps its own
  // engines (O(n) workspace each). Distances are exact, so the result is
  // byte-identical to the serial build for any thread count.
  const uint32_t actual_count = static_cast<uint32_t>(index.landmarks_.size());
  struct Workspace {
    std::unique_ptr<MonotoneDijkstra> forward;
    std::unique_ptr<MonotoneDijkstra> backward;
  };
  std::vector<Workspace> workspaces(EffectiveWorkers(options.threads));
  ParallelFor(actual_count, options.threads, [&](size_t l, unsigned worker) {
    Workspace& ws = workspaces[worker];
    if (ws.backward == nullptr) {
      ws.backward = std::make_unique<MonotoneDijkstra>(reverse_graph);
      if (!farthest) ws.forward = std::make_unique<MonotoneDijkstra>(graph);
    }
    const NodeId landmark = index.landmarks_[l];
    ws.backward->Run(landmark);
    if (!farthest) ws.forward->Run(landmark);
    for (NodeId v = 0; v < n; ++v) {
      to_table[static_cast<size_t>(v) * num + l] =
          Narrow(ws.backward->Distance(v));
      if (!farthest) {
        from_table[static_cast<size_t>(v) * num + l] =
            Narrow(ws.forward->Distance(v));
      }
    }
  });
  const uint32_t actual = static_cast<uint32_t>(index.landmarks_.size());
  if (actual == num) {
    index.dist_from_ = std::move(from_table);
    index.dist_to_ = std::move(to_table);
  } else {
    // Early stop (tiny graphs): repack to the actual stride.
    std::vector<uint32_t> from_packed(static_cast<size_t>(actual) * n);
    std::vector<uint32_t> to_packed(static_cast<size_t>(actual) * n);
    for (NodeId v = 0; v < n; ++v) {
      for (uint32_t l = 0; l < actual; ++l) {
        from_packed[static_cast<size_t>(v) * actual + l] =
            from_table[static_cast<size_t>(v) * num + l];
        to_packed[static_cast<size_t>(v) * actual + l] =
            to_table[static_cast<size_t>(v) * num + l];
      }
    }
    index.dist_from_ = std::move(from_packed);
    index.dist_to_ = std::move(to_packed);
  }
  return index;
}

LandmarkIndex LandmarkIndex::Remap(const Permutation& permutation) const {
  if (permutation.empty()) return *this;
  KPJ_CHECK(permutation.size() == num_nodes_)
      << "permutation does not match landmark index";
  LandmarkIndex out;
  out.num_nodes_ = num_nodes_;
  out.landmarks_.reserve(landmarks_.size());
  for (NodeId l : landmarks_) out.landmarks_.push_back(permutation.ToNew(l));
  // Node-major tables: a node's row moves as a block; landmark columns stay
  // in selection order so column l still belongs to landmarks_[l].
  std::vector<uint32_t> from_table(dist_from_.size());
  std::vector<uint32_t> to_table(dist_to_.size());
  const uint32_t num = num_landmarks();
  for (NodeId v = 0; v < num_nodes_; ++v) {
    const size_t src = static_cast<size_t>(v) * num;
    const size_t dst = static_cast<size_t>(permutation.ToNew(v)) * num;
    std::copy_n(dist_from_.begin() + src, num, from_table.begin() + dst);
    std::copy_n(dist_to_.begin() + src, num, to_table.begin() + dst);
  }
  out.dist_from_ = std::move(from_table);
  out.dist_to_ = std::move(to_table);
  return out;
}

uint64_t LandmarkIndex::Identity() const {
  uint64_t h = 14695981039346656037ull;
  constexpr uint64_t kPrime = 1099511628211ull;
  auto mix = [&h](uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ ((value >> (8 * i)) & 0xff)) * kPrime;
    }
  };
  mix(static_cast<uint64_t>(kind()));
  mix(num_nodes_);
  mix(landmarks_.size());
  for (NodeId l : landmarks_) mix(l);
  return h;
}

PathLength LandmarkIndex::LowerBound(NodeId u, NodeId v) const {
  // Virtual nodes (GKPJ super-source) are outside the tables; 0 is the
  // only admissible bound for them (DistanceOracle contract).
  if (u >= num_nodes_ || v >= num_nodes_) return 0;
  if (u == v) return 0;
  PathLength best = 0;
  for (uint32_t l = 0; l < num_landmarks(); ++l) {
    PathLength from_u = Widen(dist_from_[Slot(l, u)]);
    PathLength from_v = Widen(dist_from_[Slot(l, v)]);
    PathLength to_u = Widen(dist_to_[Slot(l, u)]);
    PathLength to_v = Widen(dist_to_[Slot(l, v)]);
    // dist(u,v) >= δ(l,v) - δ(l,u). If δ(l,u) is finite and δ(l,v) is not,
    // v is unreachable from u outright.
    if (from_u != kInfLength) {
      if (from_v == kInfLength) return kInfLength;
      best = std::max(best, ClampedSub(from_v, from_u));
    }
    // dist(u,v) >= δ(u,l) - δ(v,l); same unreachability inference.
    if (to_v != kInfLength) {
      if (to_u == kInfLength) return kInfLength;
      best = std::max(best, ClampedSub(to_u, to_v));
    }
  }
  return best;
}

namespace {

constexpr uint64_t kMagic = 0x4b504a4c4d4b3031ULL;  // "KPJLMK01"

template <typename T>
bool WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
  return static_cast<bool>(out);
}

template <typename C>
bool WriteVec(std::ofstream& out, const C& v) {
  uint64_t count = v.size();
  if (!WritePod(out, count)) return false;
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(
                count * sizeof(typename C::value_type)));
  return static_cast<bool>(out);
}

template <typename T>
bool ReadPod(std::ifstream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return static_cast<bool>(in);
}

template <typename T>
bool ReadVec(std::ifstream& in, std::vector<T>& v) {
  uint64_t count = 0;
  if (!ReadPod(in, count)) return false;
  if (count > (1ULL << 36)) return false;
  v.resize(count);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  return static_cast<bool>(in);
}

}  // namespace

Status LandmarkIndex::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  if (!WritePod(out, kMagic) || !WritePod(out, num_nodes_) ||
      !WriteVec(out, landmarks_) || !WriteVec(out, dist_from_) ||
      !WriteVec(out, dist_to_)) {
    return Status::IoError("write failed for " + path);
  }
  return Status::Ok();
}

Result<LandmarkIndex> LandmarkIndex::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  uint64_t magic = 0;
  NodeId num_nodes = 0;
  std::vector<NodeId> landmarks;
  std::vector<uint32_t> dist_from;
  std::vector<uint32_t> dist_to;
  if (!ReadPod(in, magic) || magic != kMagic) {
    return Status::Corruption(path + ": bad magic");
  }
  if (!ReadPod(in, num_nodes) || !ReadVec(in, landmarks) ||
      !ReadVec(in, dist_from) || !ReadVec(in, dist_to)) {
    return Status::Corruption(path + ": truncated");
  }
  Result<LandmarkIndex> index =
      FromParts(num_nodes, std::move(landmarks), std::move(dist_from),
                std::move(dist_to));
  if (!index.ok()) {
    return Status::Corruption(path + ": " + index.status().message());
  }
  return index;
}

Result<LandmarkIndex> LandmarkIndex::FromParts(NodeId num_nodes,
                                               std::vector<NodeId> landmarks,
                                               ArrayRef<uint32_t> dist_from,
                                               ArrayRef<uint32_t> dist_to) {
  const size_t expect = landmarks.size() * static_cast<size_t>(num_nodes);
  if (dist_from.size() != expect || dist_to.size() != expect) {
    return Status::Corruption("landmark table size mismatch");
  }
  for (NodeId l : landmarks) {
    if (l >= num_nodes) {
      return Status::Corruption("landmark id out of range");
    }
  }
  LandmarkIndex index;
  index.num_nodes_ = num_nodes;
  index.landmarks_ = std::move(landmarks);
  index.dist_from_ = std::move(dist_from);
  index.dist_to_ = std::move(dist_to);
  return index;
}

}  // namespace kpj
