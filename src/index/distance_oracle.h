#ifndef KPJ_INDEX_DISTANCE_ORACLE_H_
#define KPJ_INDEX_DISTANCE_ORACLE_H_

#include <cstdint>
#include <memory>
#include <span>

#include "sssp/astar.h"
#include "util/types.h"

namespace kpj {

/// Which distance-oracle family an index implements. The kind is part of
/// every derived cache key (SptCacheConfig, TargetBoundCache::Key), so
/// cached search state and set aggregates never leak across oracles.
enum class OracleKind : uint8_t {
  /// Landmark (ALT) triangle-inequality bounds — LandmarkIndex.
  kAlt = 0,
  /// 2-hop hub labels with exact point-to-point distances — HubLabelIndex.
  kHubLabel = 1,
};

/// Stable display/CLI name ("alt", "hublabel").
const char* OracleKindName(OracleKind kind);

/// Direction of a node-to-set distance bound.
enum class BoundDirection {
  /// Bound on dist(u, S) = min over x in S of dist(u, x). This is the
  /// paper's lb(u, V_T) of Eq. (2): the set is the destination category.
  kToSet,
  /// Bound on dist(S, u) = min over x in S of dist(x, u). Used by the
  /// reverse-oriented SPT_I search (bounding distance *from* the source
  /// side, §5.3/§6) and by GKPJ's multi-node source.
  kFromSet,
};

/// Opaque per-(set, direction) precomputation of an oracle — the part of
/// building a set bound that is a pure function of (oracle, set,
/// direction) and therefore shareable across queries via TargetBoundCache.
/// Each oracle defines its own concrete subtype; an aggregate must only
/// ever be handed back to the oracle that produced it (the bound cache
/// guarantees this by keying on DistanceOracle::Identity()).
class SetAggregates {
 public:
  virtual ~SetAggregates() = default;

  /// Approximate resident size, for cache byte accounting.
  virtual size_t MemoryBytes() const = 0;
};

/// A point-to-point / point-to-set lower-bound oracle over a fixed graph.
///
/// This is the pluggable axis behind every solver's heuristic: CompLB
/// (Alg. 3), TestLB (Alg. 5) and the A*-style CompSP all consume bounds
/// through this interface. Contract:
///
///  * LowerBound(u, v) <= dist(u, v) for all real nodes (admissibility),
///    kInfLength only when v is provably unreachable from u, and 0 when
///    either node is virtual (>= num_nodes(); GKPJ super-sources attach
///    via zero-weight arcs, so no other bound is admissible).
///  * MakeSetBound yields a Heuristic h with h(u) <= dist(u, S) (kToSet)
///    resp. h(u) <= dist(S, u) (kFromSet), consistent along edges of the
///    forward resp. reverse graph, h(x) == 0 for set members, and
///    h(u) == 0 for virtual nodes (u >= num_nodes()).
///  * Bounds are a pure function of (oracle contents, set, direction,
///    scoring_node, max_active): equal inputs give byte-identical bounds,
///    which is what makes cross-query caching and the engine's
///    determinism guarantees sound.
class DistanceOracle {
 public:
  virtual ~DistanceOracle() = default;

  virtual OracleKind kind() const = 0;
  virtual NodeId num_nodes() const = 0;

  /// Cache-key fingerprint: two oracles with different contents (or
  /// different kinds) must return different values with overwhelming
  /// probability. Mixed into TargetBoundCache keys so aggregates computed
  /// by one oracle are never served to another.
  virtual uint64_t Identity() const = 0;

  /// Lower bound on dist(u, v); kInfLength only on a proof of
  /// unreachability. For exact oracles (hub labels) this IS dist(u, v).
  virtual PathLength LowerBound(NodeId u, NodeId v) const = 0;

  /// The cacheable per-set precomputation (O(|L|*|S|) for ALT, a label
  /// merge for hub labels).
  virtual std::shared_ptr<const SetAggregates> ComputeSetAggregates(
      std::span<const NodeId> set, BoundDirection direction) const = 0;

  /// Builds the per-query set bound from (typically cached) aggregates.
  /// `aggregates` must come from this oracle's ComputeSetAggregates with
  /// the same direction. `scoring_node`/`max_active` drive ALT's
  /// active-landmark selection; oracles without that notion ignore them.
  /// The returned heuristic keeps a reference to this oracle and shares
  /// ownership of the aggregates.
  virtual std::unique_ptr<Heuristic> MakeSetBound(
      std::shared_ptr<const SetAggregates> aggregates,
      BoundDirection direction, NodeId scoring_node,
      uint32_t max_active) const = 0;
};

inline const char* OracleKindName(OracleKind kind) {
  switch (kind) {
    case OracleKind::kAlt:
      return "alt";
    case OracleKind::kHubLabel:
      return "hublabel";
  }
  return "unknown";
}

}  // namespace kpj

#endif  // KPJ_INDEX_DISTANCE_ORACLE_H_
