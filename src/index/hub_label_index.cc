#include "index/hub_label_index.h"

#include <algorithm>
#include <istream>
#include <limits>
#include <ostream>
#include <utility>

#include "sssp/monotone_dijkstra.h"
#include "util/concurrency.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace kpj {
namespace {

constexpr uint64_t kHubLabelMagic = 0x4b504a484c423031ULL;  // "KPJHLB01"
constexpr uint32_t kAbsent32 = UINT32_MAX;

uint64_t FnvMix(const void* data, size_t len, uint64_t h) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  constexpr uint64_t kPrime = 1099511628211ull;
  for (size_t i = 0; i < len; ++i) h = (h ^ bytes[i]) * kPrime;
  return h;
}

template <typename C>
uint64_t FnvMixVec(const C& v, uint64_t h) {
  uint64_t count = v.size();
  h = FnvMix(&count, sizeof(count), h);
  return FnvMix(v.data(), v.size() * sizeof(typename C::value_type), h);
}

/// Contraction-order approximation: nodes scored by sampled subtree-size
/// betweenness — `order_seeds` farthest-point-spread SSSPs, each node
/// credited with the size of its shortest-path subtree per sample (the
/// number of sampled shortest paths through it). Descending score with
/// ascending-id tie-break; fully deterministic.
std::vector<NodeId> ComputeOrder(const Graph& graph,
                                 const HubLabelOptions& options) {
  const NodeId n = graph.NumNodes();
  std::vector<uint64_t> score(n, 0);
  const uint32_t seeds = std::min<uint32_t>(std::max(options.order_seeds, 1u),
                                            n);
  MonotoneDijkstra sssp(graph);
  std::vector<PathLength> min_dist(n, kInfLength);
  std::vector<char> is_seed(n, 0);
  std::vector<uint32_t> subtree(n, 0);
  std::vector<NodeId> settled;
  settled.reserve(n);

  // First seed: highest out-degree (a road intersection, not a cul-de-sac),
  // lowest id on ties.
  NodeId seed = 0;
  size_t best_degree = 0;
  for (NodeId v = 0; v < n; ++v) {
    size_t deg = graph.OutEdges(v).size();
    if (deg > best_degree) {
      best_degree = deg;
      seed = v;
    }
  }

  for (uint32_t k = 0; k < seeds; ++k) {
    is_seed[seed] = 1;
    sssp.Run(seed);
    settled.clear();
    for (NodeId v = 0; v < n; ++v) {
      PathLength d = sssp.Distance(v);
      if (d == kInfLength) continue;
      settled.push_back(v);
      if (d < min_dist[v]) min_dist[v] = d;
    }
    // Children before parents: descending distance, deterministic
    // tie-break. (Zero-weight ties may split a subtree across the tie —
    // harmless for an ordering score.)
    std::sort(settled.begin(), settled.end(), [&](NodeId a, NodeId b) {
      PathLength da = sssp.Distance(a), db = sssp.Distance(b);
      return da != db ? da > db : a > b;
    });
    for (NodeId v : settled) subtree[v] = 1;
    for (NodeId v : settled) {
      NodeId p = sssp.Parent(v);
      if (p != kInvalidNode) subtree[p] += subtree[v];
    }
    for (NodeId v : settled) {
      if (v != seed) score[v] += subtree[v];
    }
    // Next seed: farthest-point spread; an untouched node (another SCC)
    // beats any reachable one.
    NodeId next = kInvalidNode;
    PathLength far = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (is_seed[v]) continue;
      if (min_dist[v] == kInfLength) {
        next = v;
        far = kInfLength;
        break;
      }
      if (min_dist[v] > far) {
        far = min_dist[v];
        next = v;
      }
    }
    if (options.progress) options.progress("order", k + 1, seeds);
    if (next == kInvalidNode || far == 0) break;
    seed = next;
  }

  std::vector<NodeId> order(n);
  for (NodeId v = 0; v < n; ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return score[a] != score[b] ? score[a] > score[b] : a < b;
  });
  return order;
}

/// Per-worker state of the pruned label searches.
struct BuildWorkspace {
  std::vector<PathLength> dist;      // node -> tentative distance
  std::vector<NodeId> touched;       // nodes with dist != kInfLength
  std::vector<uint32_t> hub_dist;    // rank -> committed hub distance
  RadixHeap radix;                   // integer-weight monotone queue
  IndexedHeap<PathLength> fallback;  // float-weight fallback queue

  explicit BuildWorkspace(NodeId n)
      : dist(n, kInfLength), hub_dist(n, kAbsent32) {
    if constexpr (!std::is_integral_v<Weight>) fallback.Reset(n);
  }
};

/// Pruned Dijkstra from `hub` over `graph`: settles nodes in distance
/// order, skips (without labeling or expanding) every node v whose
/// committed 2-hop query min over g of hub_label[g] + opposite[v][g]
/// already covers the tentative distance, and reports the surviving
/// (node, distance) labels in settle order. Pruning reads only labels
/// committed by earlier batches, so concurrent searches of one batch all
/// see the same snapshot — the output is scheduling-independent.
void PrunedSearch(const Graph& graph, NodeId hub,
                  std::span<const HubLabelIndex::Entry> hub_label,
                  const std::vector<std::vector<HubLabelIndex::Entry>>&
                      opposite,
                  BuildWorkspace& ws,
                  std::vector<std::pair<NodeId, uint32_t>>& out) {
  for (const HubLabelIndex::Entry& e : hub_label) ws.hub_dist[e.rank] = e.dist;

  auto covered = [&](NodeId v, PathLength d) {
    for (const HubLabelIndex::Entry& e : opposite[v]) {
      uint32_t hd = ws.hub_dist[e.rank];
      if (hd != kAbsent32 &&
          static_cast<PathLength>(hd) + e.dist <= d) {
        return true;
      }
    }
    return false;
  };

  auto settle = [&](NodeId u, PathLength du) {
    if (covered(u, du)) return;  // A better-ranked hub already serves u.
    KPJ_CHECK(du <= std::numeric_limits<uint32_t>::max())
        << "hub-label distance exceeds 32-bit storage";
    out.emplace_back(u, static_cast<uint32_t>(du));
    for (const OutEdge& e : graph.OutEdges(u)) {
      PathLength nd = du + e.weight;
      if (nd < ws.dist[e.to]) {
        if (ws.dist[e.to] == kInfLength) ws.touched.push_back(e.to);
        ws.dist[e.to] = nd;
        if constexpr (std::is_integral_v<Weight>) {
          ws.radix.Push(e.to, nd);
        } else {
          ws.fallback.PushOrDecrease(e.to, nd);
        }
      }
    }
  };

  ws.dist[hub] = 0;
  ws.touched.push_back(hub);
  if constexpr (std::is_integral_v<Weight>) {
    ws.radix.Clear();
    ws.radix.Push(hub, 0);
    while (!ws.radix.empty()) {
      auto [u, key] = ws.radix.Pop();
      if (key != ws.dist[u]) continue;  // Stale (lazily deleted) entry.
      settle(u, key);
    }
  } else {
    ws.fallback.Clear();
    ws.fallback.Push(hub, 0);
    while (!ws.fallback.empty()) {
      auto [u, key] = ws.fallback.PopWithKey();
      settle(u, key);
    }
  }

  for (const HubLabelIndex::Entry& e : hub_label) {
    ws.hub_dist[e.rank] = kAbsent32;
  }
  for (NodeId v : ws.touched) ws.dist[v] = kInfLength;
  ws.touched.clear();
}

}  // namespace

HubLabelIndex HubLabelIndex::Build(const Graph& graph,
                                   const Graph& reverse_graph,
                                   const HubLabelOptions& options) {
  const NodeId n = graph.NumNodes();
  KPJ_CHECK(reverse_graph.NumNodes() == n)
      << "reverse graph node count mismatch";
  KPJ_CHECK(options.batch_size >= 1);

  HubLabelIndex index;
  index.num_nodes_ = n;
  if (n == 0) {
    index.checksum_ = index.ComputeChecksum();
    return index;
  }

  std::vector<NodeId> order = ComputeOrder(graph, options);
  std::vector<uint32_t> rank_of_node(n, 0);
  for (NodeId r = 0; r < n; ++r) rank_of_node[order[r]] = r;
  index.rank_of_node_ = std::move(rank_of_node);

  // Pruned landmark labeling in rank order, parallelized batch-
  // synchronously: every hub of a batch searches against the labels
  // committed by *previous* batches only, then the batch's additions are
  // appended in rank order. Slightly less pruning than the sequential
  // schedule (same-batch hubs cannot prune each other), identical exact
  // query answers, and byte-identical output at any thread count.
  std::vector<std::vector<Entry>> labels_in(n);
  std::vector<std::vector<Entry>> labels_out(n);
  std::vector<std::unique_ptr<BuildWorkspace>> workspaces(
      EffectiveWorkers(options.threads));
  std::vector<std::vector<std::pair<NodeId, uint32_t>>> add_in(
      options.batch_size);
  std::vector<std::vector<std::pair<NodeId, uint32_t>>> add_out(
      options.batch_size);

  for (NodeId batch_start = 0; batch_start < n;
       batch_start += options.batch_size) {
    const size_t batch =
        std::min<size_t>(options.batch_size, n - batch_start);
    ParallelFor(batch, options.threads, [&](size_t i, unsigned worker) {
      if (workspaces[worker] == nullptr) {
        workspaces[worker] = std::make_unique<BuildWorkspace>(n);
      }
      BuildWorkspace& ws = *workspaces[worker];
      const NodeId hub = order[batch_start + i];
      add_in[i].clear();
      add_out[i].clear();
      // Forward search: δ(hub, v) entries for the in-labels of reached
      // nodes, pruned via L_out(hub) x L_in(v).
      PrunedSearch(graph, hub, labels_out[hub], labels_in, ws, add_in[i]);
      // Backward search over the reverse graph: δ(v, hub) entries for the
      // out-labels, pruned via L_out(v) x L_in(hub).
      PrunedSearch(reverse_graph, hub, labels_in[hub], labels_out, ws,
                   add_out[i]);
    });
    for (size_t i = 0; i < batch; ++i) {
      const uint32_t rank = batch_start + static_cast<uint32_t>(i);
      for (const auto& [v, d] : add_in[i]) labels_in[v].push_back({rank, d});
      for (const auto& [v, d] : add_out[i]) {
        labels_out[v].push_back({rank, d});
      }
    }
    if (options.progress) {
      options.progress("label", batch_start + batch, n);
    }
  }

  auto flatten = [n](const std::vector<std::vector<Entry>>& rows,
                     std::vector<uint64_t>& offsets,
                     std::vector<Entry>& entries) {
    offsets.assign(n + 1, 0);
    size_t total = 0;
    for (NodeId v = 0; v < n; ++v) {
      offsets[v] = total;
      total += rows[v].size();
    }
    offsets[n] = total;
    entries.reserve(total);
    for (NodeId v = 0; v < n; ++v) {
      entries.insert(entries.end(), rows[v].begin(), rows[v].end());
    }
  };
  std::vector<uint64_t> in_offsets;
  std::vector<uint64_t> out_offsets;
  std::vector<Entry> in_entries;
  std::vector<Entry> out_entries;
  flatten(labels_in, in_offsets, in_entries);
  flatten(labels_out, out_offsets, out_entries);
  index.in_offsets_ = std::move(in_offsets);
  index.in_entries_ = std::move(in_entries);
  index.out_offsets_ = std::move(out_offsets);
  index.out_entries_ = std::move(out_entries);
  index.checksum_ = index.ComputeChecksum();
  return index;
}

PathLength HubLabelIndex::LowerBound(NodeId u, NodeId v) const {
  if (u >= num_nodes_ || v >= num_nodes_) return 0;
  if (u == v) return 0;
  std::span<const Entry> a = OutLabel(u);
  std::span<const Entry> b = InLabel(v);
  PathLength best = kInfLength;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].rank < b[j].rank) {
      ++i;
    } else if (a[i].rank > b[j].rank) {
      ++j;
    } else {
      PathLength d = static_cast<PathLength>(a[i].dist) + b[j].dist;
      if (d < best) best = d;
      ++i;
      ++j;
    }
  }
  return best;
}

std::shared_ptr<const SetAggregates> HubLabelIndex::ComputeSetAggregates(
    std::span<const NodeId> set, BoundDirection direction) const {
  auto agg = std::make_shared<HubSetAggregates>();
  std::vector<Entry> all;
  for (NodeId x : set) {
    if (x >= num_nodes_) continue;
    std::span<const Entry> label =
        direction == BoundDirection::kToSet ? InLabel(x) : OutLabel(x);
    all.insert(all.end(), label.begin(), label.end());
  }
  std::sort(all.begin(), all.end(), [](const Entry& a, const Entry& b) {
    return a.rank != b.rank ? a.rank < b.rank : a.dist < b.dist;
  });
  agg->merged.reserve(all.size());
  for (const Entry& e : all) {
    if (agg->merged.empty() || agg->merged.back().rank != e.rank) {
      agg->merged.push_back(e);  // First = minimum distance for this hub.
    }
  }
  return agg;
}

std::unique_ptr<Heuristic> HubLabelIndex::MakeSetBound(
    std::shared_ptr<const SetAggregates> aggregates, BoundDirection direction,
    NodeId scoring_node, uint32_t max_active) const {
  // Exact bounds have no active-subset notion: every hub in the node label
  // is consulted regardless, so the ALT tuning knobs are ignored.
  (void)scoring_node;
  (void)max_active;
  KPJ_CHECK(aggregates != nullptr);
  return std::make_unique<HubSetBound>(
      this,
      std::static_pointer_cast<const HubSetAggregates>(std::move(aggregates)),
      direction);
}

HubSetBound::HubSetBound(const HubLabelIndex* index,
                         std::shared_ptr<const HubSetAggregates> aggregates,
                         BoundDirection direction)
    : index_(index), agg_(std::move(aggregates)), direction_(direction) {
  KPJ_CHECK(index_ != nullptr);
  KPJ_CHECK(agg_ != nullptr);
}

PathLength HubSetBound::Estimate(NodeId u) const {
  // Virtual query nodes (GKPJ super-source, §6) are outside the offline
  // labels; 0 is the only admissible bound (they attach via 0-weight arcs).
  if (u >= index_->num_nodes()) return 0;
  std::span<const HubLabelIndex::Entry> label =
      direction_ == BoundDirection::kToSet ? index_->OutLabel(u)
                                           : index_->InLabel(u);
  const std::vector<HubLabelIndex::Entry>& merged = agg_->merged;
  PathLength best = kInfLength;
  size_t i = 0, j = 0;
  while (i < label.size() && j < merged.size()) {
    if (label[i].rank < merged[j].rank) {
      ++i;
    } else if (label[i].rank > merged[j].rank) {
      ++j;
    } else {
      PathLength d = static_cast<PathLength>(label[i].dist) + merged[j].dist;
      if (d < best) best = d;
      ++i;
      ++j;
    }
  }
  return best;
}

HubLabelIndex HubLabelIndex::Remap(const Permutation& permutation) const {
  if (permutation.empty()) return *this;
  KPJ_CHECK(permutation.size() == num_nodes_)
      << "permutation does not match hub label index";
  HubLabelIndex out;
  out.num_nodes_ = num_nodes_;
  std::vector<uint32_t> new_ranks(num_nodes_, 0);
  for (NodeId v = 0; v < num_nodes_; ++v) {
    new_ranks[permutation.ToNew(v)] = rank_of_node_[v];
  }
  out.rank_of_node_ = std::move(new_ranks);
  // Entries address hubs by rank, so rows move wholesale and their
  // contents are untouched: bounds are invariant under relabeling.
  auto permute = [&](const ArrayRef<uint64_t>& offsets,
                     const ArrayRef<Entry>& entries,
                     std::vector<uint64_t>& out_offsets,
                     std::vector<Entry>& out_entries) {
    out_offsets.assign(num_nodes_ + 1, 0);
    for (NodeId v = 0; v < num_nodes_; ++v) {
      out_offsets[permutation.ToNew(v) + 1] = offsets[v + 1] - offsets[v];
    }
    for (NodeId v = 0; v < num_nodes_; ++v) {
      out_offsets[v + 1] += out_offsets[v];
    }
    out_entries.resize(entries.size());
    for (NodeId v = 0; v < num_nodes_; ++v) {
      std::copy_n(entries.begin() + offsets[v], offsets[v + 1] - offsets[v],
                  out_entries.begin() + out_offsets[permutation.ToNew(v)]);
    }
  };
  std::vector<uint64_t> in_offsets;
  std::vector<uint64_t> out_offsets;
  std::vector<Entry> in_entries;
  std::vector<Entry> out_entries;
  permute(in_offsets_, in_entries_, in_offsets, in_entries);
  permute(out_offsets_, out_entries_, out_offsets, out_entries);
  out.in_offsets_ = std::move(in_offsets);
  out.in_entries_ = std::move(in_entries);
  out.out_offsets_ = std::move(out_offsets);
  out.out_entries_ = std::move(out_entries);
  out.checksum_ = out.ComputeChecksum();
  return out;
}

uint64_t HubLabelIndex::ComputeChecksum() const {
  uint64_t h = 14695981039346656037ull;
  h = FnvMix(&num_nodes_, sizeof(num_nodes_), h);
  h = FnvMixVec(rank_of_node_, h);
  h = FnvMixVec(in_offsets_, h);
  h = FnvMixVec(in_entries_, h);
  h = FnvMixVec(out_offsets_, h);
  h = FnvMixVec(out_entries_, h);
  return h;
}

uint64_t HubLabelIndex::Identity() const {
  uint64_t h = 14695981039346656037ull;
  uint8_t kind_byte = static_cast<uint8_t>(kind());
  h = FnvMix(&kind_byte, sizeof(kind_byte), h);
  h = FnvMix(&num_nodes_, sizeof(num_nodes_), h);
  uint64_t sum = checksum_;
  h = FnvMix(&sum, sizeof(sum), h);
  return h;
}

size_t HubLabelIndex::MemoryBytes() const {
  // Borrowed (mmap-backed) arrays own no heap memory; their bytes are
  // accounted as mapped file bytes by the owner of the mapping.
  return sizeof(HubLabelIndex) + rank_of_node_.OwnedBytes() +
         in_offsets_.OwnedBytes() + out_offsets_.OwnedBytes() +
         in_entries_.OwnedBytes() + out_entries_.OwnedBytes();
}

namespace {

bool WriteBytes(std::ostream& out, const void* data, size_t len) {
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(len));
  return static_cast<bool>(out);
}

template <typename T>
bool WritePod(std::ostream& out, const T& value) {
  return WriteBytes(out, &value, sizeof(T));
}

template <typename C>
bool WriteVec(std::ostream& out, const C& v) {
  uint64_t count = v.size();
  return WritePod(out, count) &&
         WriteBytes(out, v.data(), v.size() * sizeof(typename C::value_type));
}

template <typename T>
bool ReadPod(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return static_cast<bool>(in);
}

template <typename T>
bool ReadVec(std::istream& in, std::vector<T>& v) {
  uint64_t count = 0;
  if (!ReadPod(in, count)) return false;
  if (count > (1ULL << 36)) return false;
  v.resize(count);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  return static_cast<bool>(in);
}

}  // namespace

Status HubLabelIndex::SaveToStream(std::ostream& out) const {
  if (!WritePod(out, kHubLabelMagic) || !WritePod(out, num_nodes_) ||
      !WriteVec(out, rank_of_node_) || !WriteVec(out, in_offsets_) ||
      !WriteVec(out, in_entries_) || !WriteVec(out, out_offsets_) ||
      !WriteVec(out, out_entries_) || !WritePod(out, checksum_)) {
    return Status::IoError("hub label write failed");
  }
  return Status::Ok();
}

namespace {

/// Structural validation shared by the streamed loader and FromParts.
Status ValidateLabelArrays(NodeId n, std::span<const uint32_t> rank_of_node,
                           std::span<const uint64_t> in_offsets,
                           std::span<const HubLabelIndex::Entry> in_entries,
                           std::span<const uint64_t> out_offsets,
                           std::span<const HubLabelIndex::Entry> out_entries) {
  if (rank_of_node.size() != n) {
    return Status::Corruption("hub label section: rank table size mismatch");
  }
  std::vector<char> seen(n, 0);
  for (uint32_t r : rank_of_node) {
    if (r >= n || seen[r]) {
      return Status::Corruption("hub label section: rank table not a "
                                "permutation");
    }
    seen[r] = 1;
  }
  auto check_side = [n](std::span<const uint64_t> offsets,
                        std::span<const HubLabelIndex::Entry> entries) {
    if (n == 0) return offsets.empty() && entries.empty();
    if (offsets.size() != static_cast<size_t>(n) + 1) return false;
    if (offsets.front() != 0 || offsets.back() != entries.size()) {
      return false;
    }
    for (NodeId v = 0; v < n; ++v) {
      if (offsets[v] > offsets[v + 1]) return false;
      for (uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
        if (entries[i].rank >= n) return false;
        if (i > offsets[v] && entries[i - 1].rank >= entries[i].rank) {
          return false;  // Rows must be strictly rank-ascending.
        }
      }
    }
    return true;
  };
  if (!check_side(in_offsets, in_entries) ||
      !check_side(out_offsets, out_entries)) {
    return Status::Corruption("hub label section: malformed label rows");
  }
  return Status::Ok();
}

}  // namespace

Result<HubLabelIndex> HubLabelIndex::LoadFromStream(std::istream& in) {
  uint64_t magic = 0;
  NodeId num_nodes = 0;
  std::vector<uint32_t> rank_of_node;
  std::vector<uint64_t> in_offsets;
  std::vector<uint64_t> out_offsets;
  std::vector<Entry> in_entries;
  std::vector<Entry> out_entries;
  uint64_t stored_checksum = 0;
  if (!ReadPod(in, magic) || magic != kHubLabelMagic) {
    return Status::Corruption("hub label section: bad magic");
  }
  if (!ReadPod(in, num_nodes) || !ReadVec(in, rank_of_node) ||
      !ReadVec(in, in_offsets) || !ReadVec(in, in_entries) ||
      !ReadVec(in, out_offsets) || !ReadVec(in, out_entries) ||
      !ReadPod(in, stored_checksum)) {
    return Status::Corruption("hub label section: truncated");
  }
  return FromParts(num_nodes, std::move(rank_of_node), std::move(in_offsets),
                   std::move(in_entries), std::move(out_offsets),
                   std::move(out_entries), stored_checksum,
                   /*validate=*/true);
}

Result<HubLabelIndex> HubLabelIndex::FromParts(
    NodeId num_nodes, ArrayRef<uint32_t> rank_of_node,
    ArrayRef<uint64_t> in_offsets, ArrayRef<Entry> in_entries,
    ArrayRef<uint64_t> out_offsets, ArrayRef<Entry> out_entries,
    uint64_t checksum, bool validate) {
  if (validate) {
    Status valid = ValidateLabelArrays(num_nodes, rank_of_node.view(),
                                       in_offsets.view(), in_entries.view(),
                                       out_offsets.view(), out_entries.view());
    if (!valid.ok()) return valid;
  } else {
    // Trusted path: shape checks only, so borrowed pages stay untouched.
    const size_t want = num_nodes == 0 ? 0 : static_cast<size_t>(num_nodes) + 1;
    if (rank_of_node.size() != num_nodes || in_offsets.size() != want ||
        out_offsets.size() != want) {
      return Status::Corruption("hub label section: array size mismatch");
    }
    if (num_nodes > 0 && (in_offsets.back() != in_entries.size() ||
                          out_offsets.back() != out_entries.size())) {
      return Status::Corruption("hub label section: offsets/entries disagree");
    }
  }
  HubLabelIndex index;
  index.num_nodes_ = num_nodes;
  index.rank_of_node_ = std::move(rank_of_node);
  index.in_offsets_ = std::move(in_offsets);
  index.in_entries_ = std::move(in_entries);
  index.out_offsets_ = std::move(out_offsets);
  index.out_entries_ = std::move(out_entries);
  if (validate) {
    index.checksum_ = index.ComputeChecksum();
    if (index.checksum_ != checksum) {
      return Status::Corruption("hub label section: checksum mismatch");
    }
  } else {
    index.checksum_ = checksum;
  }
  return index;
}

}  // namespace kpj
