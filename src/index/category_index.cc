#include "index/category_index.h"

#include <algorithm>
#include <fstream>

#include "util/logging.h"

namespace kpj {
namespace {

constexpr uint64_t kMagic = 0x4b504a4341543031ULL;  // "KPJCAT01"

template <typename T>
bool WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
  return static_cast<bool>(out);
}

template <typename T>
bool ReadPod(std::ifstream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

CategoryIndex::CategoryIndex(NodeId num_nodes) : num_nodes_(num_nodes) {
  categories_by_node_.resize(num_nodes);
}

CategoryId CategoryIndex::AddCategory(std::string name) {
  KPJ_CHECK(!frozen_) << "cannot add categories to a frozen index";
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  CategoryId id = static_cast<CategoryId>(names_.size());
  by_name_.emplace(name, id);
  names_.push_back(std::move(name));
  nodes_by_category_.emplace_back();
  return id;
}

std::optional<CategoryId> CategoryIndex::Find(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

const std::string& CategoryIndex::Name(CategoryId category) const {
  KPJ_CHECK(category < names_.size());
  return names_[category];
}

void CategoryIndex::Assign(NodeId node, CategoryId category) {
  KPJ_CHECK(!frozen_) << "cannot assign nodes in a frozen index";
  KPJ_CHECK(node < num_nodes_);
  KPJ_CHECK(category < names_.size());
  auto& cats = categories_by_node_[node];
  auto cit = std::lower_bound(cats.begin(), cats.end(), category);
  if (cit != cats.end() && *cit == category) return;  // Already assigned.
  cats.insert(cit, category);
  auto& nodes = nodes_by_category_[category];
  auto nit = std::lower_bound(nodes.begin(), nodes.end(), node);
  nodes.insert(nit, node);
}

std::span<const NodeId> CategoryIndex::Nodes(CategoryId category) const {
  if (frozen_) {
    KPJ_CHECK(category < names_.size());
    return {cat_nodes_.data() + cat_offsets_[category],
            cat_nodes_.data() + cat_offsets_[category + 1]};
  }
  KPJ_CHECK(category < nodes_by_category_.size());
  return nodes_by_category_[category];
}

std::span<const CategoryId> CategoryIndex::CategoriesOf(NodeId node) const {
  KPJ_CHECK(node < num_nodes_);
  if (frozen_) {
    return {node_cats_.data() + node_offsets_[node],
            node_cats_.data() + node_offsets_[node + 1]};
  }
  return categories_by_node_[node];
}

bool CategoryIndex::Belongs(NodeId node, CategoryId category) const {
  auto cats = CategoriesOf(node);
  return std::binary_search(cats.begin(), cats.end(), category);
}

CategoryIndex CategoryIndex::Remap(const Permutation& permutation) const {
  const bool identity = permutation.empty();
  KPJ_CHECK(identity || permutation.size() == num_nodes_)
      << "permutation size " << permutation.size() << " != node universe "
      << num_nodes_;
  // Built from the read accessors so frozen sources thaw into owned
  // storage (Remap's result must be mutable and mapping-independent).
  CategoryIndex out(num_nodes_);
  out.names_ = names_;
  out.by_name_ = by_name_;
  out.nodes_by_category_.resize(names_.size());
  for (CategoryId c = 0; c < names_.size(); ++c) {
    auto nodes = Nodes(c);
    auto& remapped = out.nodes_by_category_[c];
    remapped.reserve(nodes.size());
    for (NodeId v : nodes) remapped.push_back(permutation.ToNew(v));
    std::sort(remapped.begin(), remapped.end());
  }
  for (NodeId old_id = 0; old_id < num_nodes_; ++old_id) {
    auto cats = CategoriesOf(old_id);
    out.categories_by_node_[permutation.ToNew(old_id)].assign(cats.begin(),
                                                              cats.end());
  }
  return out;
}

bool CategoryIndex::Equals(const CategoryIndex& other) const {
  if (num_nodes_ != other.num_nodes_ || names_ != other.names_) return false;
  for (CategoryId c = 0; c < names_.size(); ++c) {
    auto a = Nodes(c);
    auto b = other.Nodes(c);
    if (!std::equal(a.begin(), a.end(), b.begin(), b.end())) return false;
  }
  return true;
}

Status CategoryIndex::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  uint64_t num_categories = names_.size();
  if (!WritePod(out, kMagic) || !WritePod(out, num_nodes_) ||
      !WritePod(out, num_categories)) {
    return Status::IoError("write failed for " + path);
  }
  for (CategoryId c = 0; c < names_.size(); ++c) {
    auto nodes = Nodes(c);
    uint64_t name_len = names_[c].size();
    uint64_t count = nodes.size();
    if (!WritePod(out, name_len)) return Status::IoError("write failed");
    out.write(names_[c].data(), static_cast<std::streamsize>(name_len));
    if (!WritePod(out, count)) return Status::IoError("write failed");
    out.write(reinterpret_cast<const char*>(nodes.data()),
              static_cast<std::streamsize>(count * sizeof(NodeId)));
    if (!out) return Status::IoError("write failed for " + path);
  }
  return Status::Ok();
}

Result<CategoryIndex> CategoryIndex::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  uint64_t magic = 0;
  NodeId num_nodes = 0;
  uint64_t num_categories = 0;
  if (!ReadPod(in, magic) || magic != kMagic) {
    return Status::Corruption(path + ": bad magic");
  }
  if (!ReadPod(in, num_nodes) || !ReadPod(in, num_categories) ||
      num_categories > (1ULL << 32)) {
    return Status::Corruption(path + ": bad header");
  }
  CategoryIndex index(num_nodes);
  for (uint64_t c = 0; c < num_categories; ++c) {
    uint64_t name_len = 0;
    if (!ReadPod(in, name_len) || name_len > (1ULL << 20)) {
      return Status::Corruption(path + ": bad category name length");
    }
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    uint64_t count = 0;
    if (!in || !ReadPod(in, count) || count > num_nodes) {
      return Status::Corruption(path + ": bad category size");
    }
    std::vector<NodeId> nodes(count);
    in.read(reinterpret_cast<char*>(nodes.data()),
            static_cast<std::streamsize>(count * sizeof(NodeId)));
    if (!in) return Status::Corruption(path + ": truncated");
    CategoryId id = index.AddCategory(std::move(name));
    for (NodeId v : nodes) {
      if (v >= num_nodes) {
        return Status::Corruption(path + ": node id out of range");
      }
      index.Assign(v, id);
    }
  }
  return index;
}

Result<CategoryIndex> CategoryIndex::FromParts(
    NodeId num_nodes, std::span<const char> names_blob,
    std::span<const uint64_t> name_offsets, ArrayRef<uint64_t> cat_offsets,
    ArrayRef<NodeId> cat_nodes, ArrayRef<uint64_t> node_offsets,
    ArrayRef<CategoryId> node_cats, bool validate) {
  if (name_offsets.empty()) {
    return Status::Corruption("category section: missing name offsets");
  }
  const size_t num_categories = name_offsets.size() - 1;
  if (name_offsets.front() != 0 ||
      name_offsets.back() != names_blob.size()) {
    return Status::Corruption("category section: name offsets out of range");
  }
  if (cat_offsets.size() != num_categories + 1 ||
      node_offsets.size() != static_cast<size_t>(num_nodes) + 1) {
    return Status::Corruption("category section: offset array size mismatch");
  }
  if (cat_offsets.front() != 0 || cat_offsets.back() != cat_nodes.size() ||
      node_offsets.front() != 0 || node_offsets.back() != node_cats.size()) {
    return Status::Corruption("category section: offsets/entries disagree");
  }

  CategoryIndex index(num_nodes);
  index.categories_by_node_.clear();  // frozen mode uses the CSR arrays
  index.names_.reserve(num_categories);
  for (size_t c = 0; c < num_categories; ++c) {
    if (name_offsets[c] > name_offsets[c + 1]) {
      return Status::Corruption("category section: name offsets not monotone");
    }
    std::string name(names_blob.data() + name_offsets[c],
                     name_offsets[c + 1] - name_offsets[c]);
    if (index.by_name_.count(name) != 0) {
      return Status::Corruption("category section: duplicate category name");
    }
    index.by_name_.emplace(name, static_cast<CategoryId>(c));
    index.names_.push_back(std::move(name));
  }

  if (validate) {
    auto check_csr = [](std::span<const uint64_t> offsets,
                        size_t id_bound, auto ids) {
      for (size_t i = 0; i + 1 < offsets.size(); ++i) {
        if (offsets[i] > offsets[i + 1]) return false;
        for (uint64_t j = offsets[i]; j < offsets[i + 1]; ++j) {
          if (ids[j] >= id_bound) return false;
          if (j > offsets[i] && ids[j - 1] >= ids[j]) {
            return false;  // Rows must be strictly ascending (sorted sets).
          }
        }
      }
      return true;
    };
    if (!check_csr(cat_offsets.view(), num_nodes, cat_nodes.view()) ||
        !check_csr(node_offsets.view(), num_categories, node_cats.view())) {
      return Status::Corruption("category section: malformed CSR rows");
    }
  }

  index.frozen_ = true;
  index.cat_offsets_ = std::move(cat_offsets);
  index.cat_nodes_ = std::move(cat_nodes);
  index.node_offsets_ = std::move(node_offsets);
  index.node_cats_ = std::move(node_cats);
  return index;
}

}  // namespace kpj
