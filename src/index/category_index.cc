#include "index/category_index.h"

#include <algorithm>
#include <fstream>

#include "util/logging.h"

namespace kpj {
namespace {

constexpr uint64_t kMagic = 0x4b504a4341543031ULL;  // "KPJCAT01"

template <typename T>
bool WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
  return static_cast<bool>(out);
}

template <typename T>
bool ReadPod(std::ifstream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

CategoryIndex::CategoryIndex(NodeId num_nodes) : num_nodes_(num_nodes) {
  categories_by_node_.resize(num_nodes);
}

CategoryId CategoryIndex::AddCategory(std::string name) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  CategoryId id = static_cast<CategoryId>(names_.size());
  by_name_.emplace(name, id);
  names_.push_back(std::move(name));
  nodes_by_category_.emplace_back();
  return id;
}

std::optional<CategoryId> CategoryIndex::Find(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

const std::string& CategoryIndex::Name(CategoryId category) const {
  KPJ_CHECK(category < names_.size());
  return names_[category];
}

void CategoryIndex::Assign(NodeId node, CategoryId category) {
  KPJ_CHECK(node < num_nodes_);
  KPJ_CHECK(category < names_.size());
  auto& cats = categories_by_node_[node];
  auto cit = std::lower_bound(cats.begin(), cats.end(), category);
  if (cit != cats.end() && *cit == category) return;  // Already assigned.
  cats.insert(cit, category);
  auto& nodes = nodes_by_category_[category];
  auto nit = std::lower_bound(nodes.begin(), nodes.end(), node);
  nodes.insert(nit, node);
}

const std::vector<NodeId>& CategoryIndex::Nodes(CategoryId category) const {
  KPJ_CHECK(category < nodes_by_category_.size());
  return nodes_by_category_[category];
}

std::span<const CategoryId> CategoryIndex::CategoriesOf(NodeId node) const {
  KPJ_CHECK(node < num_nodes_);
  return categories_by_node_[node];
}

bool CategoryIndex::Belongs(NodeId node, CategoryId category) const {
  auto cats = CategoriesOf(node);
  return std::binary_search(cats.begin(), cats.end(), category);
}

CategoryIndex CategoryIndex::Remap(const Permutation& permutation) const {
  if (permutation.empty()) return *this;
  KPJ_CHECK(permutation.size() == num_nodes_)
      << "permutation size " << permutation.size() << " != node universe "
      << num_nodes_;
  CategoryIndex out = *this;
  for (auto& nodes : out.nodes_by_category_) {
    for (NodeId& v : nodes) v = permutation.ToNew(v);
    std::sort(nodes.begin(), nodes.end());
  }
  for (NodeId old_id = 0; old_id < num_nodes_; ++old_id) {
    out.categories_by_node_[permutation.ToNew(old_id)] =
        categories_by_node_[old_id];
  }
  return out;
}

Status CategoryIndex::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  uint64_t num_categories = names_.size();
  if (!WritePod(out, kMagic) || !WritePod(out, num_nodes_) ||
      !WritePod(out, num_categories)) {
    return Status::IoError("write failed for " + path);
  }
  for (CategoryId c = 0; c < names_.size(); ++c) {
    uint64_t name_len = names_[c].size();
    uint64_t count = nodes_by_category_[c].size();
    if (!WritePod(out, name_len)) return Status::IoError("write failed");
    out.write(names_[c].data(), static_cast<std::streamsize>(name_len));
    if (!WritePod(out, count)) return Status::IoError("write failed");
    out.write(
        reinterpret_cast<const char*>(nodes_by_category_[c].data()),
        static_cast<std::streamsize>(count * sizeof(NodeId)));
    if (!out) return Status::IoError("write failed for " + path);
  }
  return Status::Ok();
}

Result<CategoryIndex> CategoryIndex::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  uint64_t magic = 0;
  NodeId num_nodes = 0;
  uint64_t num_categories = 0;
  if (!ReadPod(in, magic) || magic != kMagic) {
    return Status::Corruption(path + ": bad magic");
  }
  if (!ReadPod(in, num_nodes) || !ReadPod(in, num_categories) ||
      num_categories > (1ULL << 32)) {
    return Status::Corruption(path + ": bad header");
  }
  CategoryIndex index(num_nodes);
  for (uint64_t c = 0; c < num_categories; ++c) {
    uint64_t name_len = 0;
    if (!ReadPod(in, name_len) || name_len > (1ULL << 20)) {
      return Status::Corruption(path + ": bad category name length");
    }
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    uint64_t count = 0;
    if (!in || !ReadPod(in, count) || count > num_nodes) {
      return Status::Corruption(path + ": bad category size");
    }
    std::vector<NodeId> nodes(count);
    in.read(reinterpret_cast<char*>(nodes.data()),
            static_cast<std::streamsize>(count * sizeof(NodeId)));
    if (!in) return Status::Corruption(path + ": truncated");
    CategoryId id = index.AddCategory(std::move(name));
    for (NodeId v : nodes) {
      if (v >= num_nodes) {
        return Status::Corruption(path + ": node id out of range");
      }
      index.Assign(v, id);
    }
  }
  return index;
}

}  // namespace kpj
