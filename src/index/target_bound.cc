#include "index/target_bound.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace kpj {

std::shared_ptr<const LandmarkSetAggregates>
LandmarkSetBound::ComputeAggregates(const LandmarkIndex& index,
                                    std::span<const NodeId> set,
                                    BoundDirection direction) {
  auto agg = std::make_shared<LandmarkSetAggregates>();
  const uint32_t num = index.num_landmarks();
  agg->min_primary.assign(num, kInfLength);
  agg->max_secondary.assign(num, 0);
  for (uint32_t l = 0; l < num; ++l) {
    PathLength min_p = kInfLength;
    PathLength max_s = 0;
    for (NodeId x : set) {
      PathLength from = index.DistFromLandmark(l, x);  // δ(w, x)
      PathLength to = index.DistToLandmark(l, x);      // δ(x, w)
      PathLength p = direction == BoundDirection::kToSet ? from : to;
      PathLength s = direction == BoundDirection::kToSet ? to : from;
      min_p = std::min(min_p, p);
      max_s = std::max(max_s, s);
    }
    agg->min_primary[l] = min_p;
    agg->max_secondary[l] = max_s;
  }
  return agg;
}

LandmarkSetBound::LandmarkSetBound(const LandmarkIndex* index,
                                   std::span<const NodeId> set,
                                   BoundDirection direction,
                                   NodeId scoring_node, uint32_t max_active)
    : index_(index), direction_(direction) {
  KPJ_CHECK(index_ != nullptr);
  agg_ = ComputeAggregates(*index_, set, direction);
  SelectActive(scoring_node, max_active);
}

LandmarkSetBound::LandmarkSetBound(
    const LandmarkIndex* index,
    std::shared_ptr<const LandmarkSetAggregates> aggregates,
    BoundDirection direction, NodeId scoring_node, uint32_t max_active)
    : index_(index), direction_(direction), agg_(std::move(aggregates)) {
  KPJ_CHECK(index_ != nullptr);
  KPJ_CHECK(agg_ != nullptr);
  KPJ_CHECK(agg_->min_primary.size() == index_->num_landmarks());
  SelectActive(scoring_node, max_active);
}

void LandmarkSetBound::SelectActive(NodeId scoring_node,
                                    uint32_t max_active) {
  const uint32_t num = index_->num_landmarks();
  active_.resize(num);
  std::iota(active_.begin(), active_.end(), 0);
  if (max_active > 0 && max_active < num &&
      scoring_node < index_->num_nodes()) {
    // Keep the landmarks that bound best at the scoring node. An infinite
    // contribution (unreachability proof) trumps everything.
    std::vector<std::pair<PathLength, uint32_t>> scored;
    scored.reserve(num);
    for (uint32_t l = 0; l < num; ++l) {
      scored.emplace_back(EstimateOne(l, scoring_node), l);
    }
    std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
      return a.first > b.first;
    });
    active_.clear();
    for (uint32_t i = 0; i < max_active; ++i) {
      active_.push_back(scored[i].second);
    }
    std::sort(active_.begin(), active_.end());  // Cache-friendly order.
  }
}

PathLength LandmarkSetBound::EstimateOne(uint32_t l, NodeId u) const {
  PathLength best = 0;
  PathLength from_u = index_->DistFromLandmark(l, u);  // δ(w, u)
  PathLength to_u = index_->DistToLandmark(l, u);      // δ(u, w)
  const PathLength min_primary = agg_->min_primary[l];
  const PathLength max_secondary = agg_->max_secondary[l];
  if (direction_ == BoundDirection::kToSet) {
    // dist(u, S) >= min_x δ(w,x) - δ(w,u): valid whenever δ(w,u) finite.
    // If w reaches u but no set member, u cannot reach the set at all
    // (u -> x would give w -> u -> x).
    if (from_u != kInfLength) {
      if (min_primary == kInfLength) return kInfLength;
      best = std::max(best, ClampedSub(min_primary, from_u));
    }
    // dist(u, S) >= δ(u,w) - max_x δ(x,w): valid when the max is finite,
    // i.e. every set member reaches w. Then if u cannot reach w, u can
    // reach no set member either (u -> x -> w would be finite).
    if (max_secondary != kInfLength) {
      if (to_u == kInfLength) return kInfLength;
      best = std::max(best, ClampedSub(to_u, max_secondary));
    }
  } else {
    // Symmetric pair for dist(S, u):
    //   dist(S, u) >= min_x δ(x,w) - δ(u,w)
    //   dist(S, u) >= δ(w,u) - max_x δ(w,x)
    // with the same unreachability inferences as above.
    if (to_u != kInfLength) {
      if (min_primary == kInfLength) return kInfLength;
      best = std::max(best, ClampedSub(min_primary, to_u));
    }
    if (max_secondary != kInfLength) {
      if (from_u == kInfLength) return kInfLength;
      best = std::max(best, ClampedSub(from_u, max_secondary));
    }
  }
  return best;
}

PathLength LandmarkSetBound::Estimate(NodeId u) const {
  // Virtual query nodes (GKPJ super-source, §6) are outside the offline
  // tables; 0 is the only admissible bound (they attach via 0-weight arcs).
  if (u >= index_->num_nodes()) return 0;
  PathLength best = 0;
  for (uint32_t l : active_) {
    PathLength b = EstimateOne(l, u);
    if (b == kInfLength) return kInfLength;
    best = std::max(best, b);
  }
  return best;
}

std::shared_ptr<const SetAggregates> LandmarkIndex::ComputeSetAggregates(
    std::span<const NodeId> set, BoundDirection direction) const {
  return LandmarkSetBound::ComputeAggregates(*this, set, direction);
}

std::unique_ptr<Heuristic> LandmarkIndex::MakeSetBound(
    std::shared_ptr<const SetAggregates> aggregates, BoundDirection direction,
    NodeId scoring_node, uint32_t max_active) const {
  KPJ_CHECK(aggregates != nullptr);
  // The cache keys aggregates by Identity(), so anything handed back here
  // was produced by this oracle's ComputeSetAggregates.
  return std::make_unique<LandmarkSetBound>(
      this,
      std::static_pointer_cast<const LandmarkSetAggregates>(
          std::move(aggregates)),
      direction, scoring_node, max_active);
}

size_t TargetBoundCache::KeyHash::operator()(const Key& key) const {
  size_t h = 14695981039346656037ull;
  constexpr size_t kPrime = 1099511628211ull;
  h = (h ^ key.oracle) * kPrime;
  h = (h ^ key.epoch) * kPrime;
  h = (h ^ static_cast<size_t>(key.direction)) * kPrime;
  for (NodeId x : key.set) h = (h ^ x) * kPrime;
  return h;
}

TargetBoundCache::TargetBoundCache(size_t budget_bytes)
    : budget_bytes_(budget_bytes) {}

size_t TargetBoundCache::EntryBytes(const Key& key,
                                    const SetAggregates& agg) {
  return 2 * key.set.capacity() * sizeof(NodeId) + agg.MemoryBytes() + 128;
}

std::shared_ptr<const SetAggregates> TargetBoundCache::Lookup(
    uint64_t oracle_identity, uint64_t epoch, BoundDirection direction,
    std::span<const NodeId> set) {
  Key key{oracle_identity, epoch, direction,
          std::vector<NodeId>(set.begin(), set.end())};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->second;
}

void TargetBoundCache::Insert(
    uint64_t oracle_identity, uint64_t epoch, BoundDirection direction,
    std::span<const NodeId> set,
    std::shared_ptr<const SetAggregates> aggregates) {
  KPJ_CHECK(aggregates != nullptr);
  Key key{oracle_identity, epoch, direction,
          std::vector<NodeId>(set.begin(), set.end())};
  size_t bytes = EntryBytes(key, *aggregates);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= EntryBytes(it->second->first, *it->second->second);
    bytes_ += bytes;
    it->second->second = std::move(aggregates);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(std::move(key), std::move(aggregates));
  index_.emplace(lru_.front().first, lru_.begin());
  bytes_ += bytes;
  while (bytes_ > budget_bytes_ && lru_.size() > 1) {
    auto& victim = lru_.back();
    bytes_ -= EntryBytes(victim.first, *victim.second);
    index_.erase(victim.first);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void TargetBoundCache::PurgeOlderEpochs(uint64_t current_epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->first.epoch < current_epoch) {
      bytes_ -= EntryBytes(it->first, *it->second);
      index_.erase(it->first);
      it = lru_.erase(it);
      evictions_.fetch_add(1, std::memory_order_relaxed);
    } else {
      ++it;
    }
  }
}

TargetBoundCacheStats TargetBoundCache::StatsSnapshot() const {
  TargetBoundCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  stats.bytes = bytes_;
  stats.entries = lru_.size();
  return stats;
}

void TargetBoundCache::ResetStats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

std::unique_ptr<Heuristic> MakeCachedSetBound(
    const DistanceOracle* oracle, std::span<const NodeId> set,
    BoundDirection direction, NodeId scoring_node, uint32_t max_active,
    TargetBoundCache* cache, uint64_t epoch, AlgoStats* algo) {
  KPJ_CHECK(oracle != nullptr);
  std::shared_ptr<const SetAggregates> agg;
  if (cache == nullptr) {
    agg = oracle->ComputeSetAggregates(set, direction);
  } else {
    const uint64_t identity = oracle->Identity();
    agg = cache->Lookup(identity, epoch, direction, set);
    if (agg != nullptr) {
      if (algo != nullptr) ++algo->bound_cache_hits;
    } else {
      if (algo != nullptr) ++algo->bound_cache_misses;
      agg = oracle->ComputeSetAggregates(set, direction);
      cache->Insert(identity, epoch, direction, set, agg);
    }
  }
  return oracle->MakeSetBound(std::move(agg), direction, scoring_node,
                              max_active);
}

}  // namespace kpj
