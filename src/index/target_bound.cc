#include "index/target_bound.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace kpj {

LandmarkSetBound::LandmarkSetBound(const LandmarkIndex* index,
                                   std::span<const NodeId> set,
                                   BoundDirection direction,
                                   NodeId scoring_node, uint32_t max_active)
    : index_(index), direction_(direction) {
  KPJ_CHECK(index_ != nullptr);
  const uint32_t num = index_->num_landmarks();
  min_primary_.assign(num, kInfLength);
  max_secondary_.assign(num, 0);
  for (uint32_t l = 0; l < num; ++l) {
    PathLength min_p = kInfLength;
    PathLength max_s = 0;
    for (NodeId x : set) {
      PathLength from = index_->DistFromLandmark(l, x);  // δ(w, x)
      PathLength to = index_->DistToLandmark(l, x);      // δ(x, w)
      PathLength p = direction == BoundDirection::kToSet ? from : to;
      PathLength s = direction == BoundDirection::kToSet ? to : from;
      min_p = std::min(min_p, p);
      max_s = std::max(max_s, s);
    }
    min_primary_[l] = min_p;
    max_secondary_[l] = max_s;
  }

  active_.resize(num);
  std::iota(active_.begin(), active_.end(), 0);
  if (max_active > 0 && max_active < num &&
      scoring_node < index_->num_nodes()) {
    // Keep the landmarks that bound best at the scoring node. An infinite
    // contribution (unreachability proof) trumps everything.
    std::vector<std::pair<PathLength, uint32_t>> scored;
    scored.reserve(num);
    for (uint32_t l = 0; l < num; ++l) {
      scored.emplace_back(EstimateOne(l, scoring_node), l);
    }
    std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
      return a.first > b.first;
    });
    active_.clear();
    for (uint32_t i = 0; i < max_active; ++i) {
      active_.push_back(scored[i].second);
    }
    std::sort(active_.begin(), active_.end());  // Cache-friendly order.
  }
}

PathLength LandmarkSetBound::EstimateOne(uint32_t l, NodeId u) const {
  PathLength best = 0;
  PathLength from_u = index_->DistFromLandmark(l, u);  // δ(w, u)
  PathLength to_u = index_->DistToLandmark(l, u);      // δ(u, w)
  if (direction_ == BoundDirection::kToSet) {
    // dist(u, S) >= min_x δ(w,x) - δ(w,u): valid whenever δ(w,u) finite.
    // If w reaches u but no set member, u cannot reach the set at all
    // (u -> x would give w -> u -> x).
    if (from_u != kInfLength) {
      if (min_primary_[l] == kInfLength) return kInfLength;
      best = std::max(best, ClampedSub(min_primary_[l], from_u));
    }
    // dist(u, S) >= δ(u,w) - max_x δ(x,w): valid when the max is finite,
    // i.e. every set member reaches w. Then if u cannot reach w, u can
    // reach no set member either (u -> x -> w would be finite).
    if (max_secondary_[l] != kInfLength) {
      if (to_u == kInfLength) return kInfLength;
      best = std::max(best, ClampedSub(to_u, max_secondary_[l]));
    }
  } else {
    // Symmetric pair for dist(S, u):
    //   dist(S, u) >= min_x δ(x,w) - δ(u,w)
    //   dist(S, u) >= δ(w,u) - max_x δ(w,x)
    // with the same unreachability inferences as above.
    if (to_u != kInfLength) {
      if (min_primary_[l] == kInfLength) return kInfLength;
      best = std::max(best, ClampedSub(min_primary_[l], to_u));
    }
    if (max_secondary_[l] != kInfLength) {
      if (from_u == kInfLength) return kInfLength;
      best = std::max(best, ClampedSub(from_u, max_secondary_[l]));
    }
  }
  return best;
}

PathLength LandmarkSetBound::Estimate(NodeId u) const {
  // Virtual query nodes (GKPJ super-source, §6) are outside the offline
  // tables; 0 is the only admissible bound (they attach via 0-weight arcs).
  if (u >= index_->num_nodes()) return 0;
  PathLength best = 0;
  for (uint32_t l : active_) {
    PathLength b = EstimateOne(l, u);
    if (b == kInfLength) return kInfLength;
    best = std::max(best, b);
  }
  return best;
}

}  // namespace kpj
