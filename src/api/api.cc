#include "api/api.h"

#include <cctype>

namespace kpj::api {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kOverloaded: return "overloaded";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kInternal: return "internal";
  }
  return "internal";
}

Result<StatusCode> ParseStatusCode(std::string_view name) {
  constexpr StatusCode kAll[] = {
      StatusCode::kOk,         StatusCode::kInvalidArgument,
      StatusCode::kNotFound,   StatusCode::kDeadlineExceeded,
      StatusCode::kCancelled,  StatusCode::kOverloaded,
      StatusCode::kUnavailable, StatusCode::kInternal,
  };
  for (StatusCode code : kAll) {
    if (name == StatusCodeName(code)) return code;
  }
  return Status::InvalidArgument("unknown status code '" + std::string(name) +
                                 "'");
}

StatusCode FromCoreStatus(const kpj::Status& status) {
  switch (status.code()) {
    case kpj::StatusCode::kOk: return StatusCode::kOk;
    case kpj::StatusCode::kInvalidArgument: return StatusCode::kInvalidArgument;
    case kpj::StatusCode::kNotFound: return StatusCode::kNotFound;
    case kpj::StatusCode::kDeadlineExceeded:
      return StatusCode::kDeadlineExceeded;
    case kpj::StatusCode::kCancelled: return StatusCode::kCancelled;
    case kpj::StatusCode::kIoError:
    case kpj::StatusCode::kCorruption:
    case kpj::StatusCode::kUnimplemented:
    case kpj::StatusCode::kFailedPrecondition:
      return StatusCode::kInternal;
  }
  return StatusCode::kInternal;
}

Result<OracleKind> ParseOracleKind(std::string_view name) {
  if (name == "alt") return OracleKind::kAlt;
  if (name == "hublabel") return OracleKind::kHubLabel;
  return Status::InvalidArgument("--oracle must be 'alt' or 'hublabel'");
}

Result<Algorithm> ParseAlgorithm(const std::string& name) {
  std::string canonical;
  for (char c : name) {
    if (c == '_') c = '-';
    canonical.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  // kAuto is deliberately absent from kAllAlgorithms (it is a planner
  // sentinel, not a solver), so it needs its own spelling here.
  if (canonical == "auto") return Algorithm::kAuto;
  for (Algorithm a : kAllAlgorithms) {
    std::string candidate = AlgorithmName(a);
    for (char& c : candidate) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (candidate == canonical) return a;
  }
  return Status::InvalidArgument("unknown algorithm '" + name + "'");
}

kpj::Status EngineConfig::Validate() const {
  if (deadline_ms < 0.0) {
    return Status::InvalidArgument("--deadline-ms must be >= 0");
  }
  if (slow_query_ms < 0.0) {
    return Status::InvalidArgument("--slow-query-ms must be >= 0");
  }
  if (alpha <= 1.0) {
    return Status::InvalidArgument("--alpha must be > 1");
  }
  return Status::Ok();
}

KpjEngineOptions EngineConfig::ToEngineOptions() const {
  KpjEngineOptions options;
  options.threads = workers;
  options.clamp_to_hardware = clamp_to_hardware;
  options.default_deadline_ms = deadline_ms;
  options.slow_query_ms = slow_query_ms;
  options.cache_mb = cache_mb;
  options.intra_threads = intra_threads;
  options.solver.algorithm = algorithm;
  options.solver.alpha = alpha;
  options.solver.max_active_landmarks = max_active_landmarks;
  // solver.oracle stays null: the engine resolves the instance's selected
  // oracle (KpjInstance::SelectOracle applies the `oracle` field).
  return options;
}

KpjQuery QueryRequest::ToQuery() const {
  KpjQuery query;
  query.sources = sources;
  query.targets = targets;
  query.k = k;
  return query;
}

QueryRequest QueryRequest::FromQuery(const KpjQuery& query) {
  QueryRequest request;
  request.sources = query.sources;
  request.targets = query.targets;
  request.k = query.k;
  return request;
}

QueryResponse BuildQueryResponse(const Result<KpjResult>& result,
                                 uint64_t epoch, double elapsed_ms,
                                 double queue_ms) {
  QueryResponse response;
  response.epoch = epoch;
  response.elapsed_ms = elapsed_ms;
  response.queue_ms = queue_ms;
  if (!result.ok()) {
    response.status = FromCoreStatus(result.status());
    response.message = result.status().message();
    return response;
  }
  const KpjResult& kr = result.value();
  response.status = FromCoreStatus(kr.status);
  response.message = kr.status.message();
  response.paths.reserve(kr.paths.size());
  for (const Path& p : kr.paths) {
    PathPayload payload;
    payload.nodes.assign(p.nodes.begin(), p.nodes.end());
    payload.length = p.length;
    response.paths.push_back(std::move(payload));
  }
  response.sp_computations = kr.stats.shortest_path_computations;
  response.nodes_settled = kr.stats.nodes_settled;
  response.algorithm_chosen = AlgorithmName(kr.algorithm_used);
  response.planner_reason = kr.planner_reason;
  return response;
}

}  // namespace kpj::api
