#ifndef KPJ_API_JSON_H_
#define KPJ_API_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "util/status.h"

namespace kpj::api {

/// Owning JSON document tree used by the wire protocol (api/wire.h): one
/// type serves both directions, so every request/response struct has a
/// single ToJson/FromJson pair and round-trips exactly.
///
/// Integers are stored as int64 (not double) so node ids, path lengths and
/// counters survive serialization bit-exactly — the daemon's answers must
/// be byte-identical to in-process results, and a 2^53 double mantissa is
/// not a contract we want to lean on. Object keys keep insertion order so
/// serialized output is deterministic.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  using Member = std::pair<std::string, JsonValue>;

  JsonValue() : value_(nullptr) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool v) { return JsonValue(v); }
  static JsonValue Int(int64_t v) { return JsonValue(v); }
  /// Counters are uint64 in the engine; values past int64 range are
  /// clamped (they are telemetry, and a 9.2e18 event count is already
  /// saturated in every practical sense).
  static JsonValue Uint(uint64_t v);
  static JsonValue Double(double v) { return JsonValue(v); }
  static JsonValue Str(std::string v) { return JsonValue(std::move(v)); }
  static JsonValue Array() {
    JsonValue v;
    v.value_ = std::vector<JsonValue>{};
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.value_ = std::vector<Member>{};
    return v;
  }

  Kind kind() const { return static_cast<Kind>(value_.index()); }
  bool is_null() const { return kind() == Kind::kNull; }
  bool is_bool() const { return kind() == Kind::kBool; }
  bool is_int() const { return kind() == Kind::kInt; }
  bool is_double() const { return kind() == Kind::kDouble; }
  /// Any JSON number (integer- or double-stored).
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return kind() == Kind::kString; }
  bool is_array() const { return kind() == Kind::kArray; }
  bool is_object() const { return kind() == Kind::kObject; }

  bool bool_value() const { return std::get<bool>(value_); }
  int64_t int_value() const { return std::get<int64_t>(value_); }
  /// Numeric value as double regardless of storage kind.
  double number_value() const {
    return is_int() ? static_cast<double>(int_value())
                    : std::get<double>(value_);
  }
  const std::string& string_value() const {
    return std::get<std::string>(value_);
  }

  // --- Arrays -----------------------------------------------------------
  void Append(JsonValue element) {
    std::get<std::vector<JsonValue>>(value_).push_back(std::move(element));
  }
  const std::vector<JsonValue>& items() const {
    return std::get<std::vector<JsonValue>>(value_);
  }

  // --- Objects ----------------------------------------------------------
  void Set(std::string key, JsonValue value) {
    std::get<std::vector<Member>>(value_)
        .emplace_back(std::move(key), std::move(value));
  }
  const std::vector<Member>& members() const {
    return std::get<std::vector<Member>>(value_);
  }
  /// First member named `key`, or nullptr. Lookups are linear: wire
  /// objects have a dozen keys, not thousands.
  const JsonValue* Find(std::string_view key) const;

  /// Compact single-line serialization (the wire format). Doubles use
  /// enough digits to round-trip; NaN/Inf (which JSON cannot express)
  /// serialize as 0 like the engine's metrics exposition does.
  std::string Dump() const;

  /// Parses one JSON document; trailing non-whitespace is an error, as is
  /// nesting beyond an internal depth limit (the wire protocol never nests
  /// more than a handful of levels; the limit stops hostile input from
  /// exhausting the stack).
  static Result<JsonValue> Parse(std::string_view text);

 private:
  explicit JsonValue(bool v) : value_(v) {}
  explicit JsonValue(int64_t v) : value_(v) {}
  explicit JsonValue(double v) : value_(v) {}
  explicit JsonValue(std::string v) : value_(std::move(v)) {}

  void DumpTo(std::string* out) const;

  std::variant<std::nullptr_t, bool, int64_t, double, std::string,
               std::vector<JsonValue>, std::vector<Member>>
      value_;
};

// --- Typed member readers -----------------------------------------------
// Shared accessors for FromJson code: one error format ("field 'k' ...")
// across every request/response parser.

/// Required integer field (a double-stored whole number is accepted).
Result<int64_t> GetInt(const JsonValue& object, std::string_view key);
/// Optional integer field with default.
Result<int64_t> GetInt(const JsonValue& object, std::string_view key,
                       int64_t def);
/// Optional number field with default.
Result<double> GetDouble(const JsonValue& object, std::string_view key,
                         double def);
/// Required string field.
Result<std::string> GetString(const JsonValue& object, std::string_view key);
/// Optional string field with default.
Result<std::string> GetString(const JsonValue& object, std::string_view key,
                              std::string def);
/// Optional bool field with default.
Result<bool> GetBool(const JsonValue& object, std::string_view key, bool def);

}  // namespace kpj::api

#endif  // KPJ_API_JSON_H_
