#ifndef KPJ_API_OPTIONS_PARSE_H_
#define KPJ_API_OPTIONS_PARSE_H_

#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "api/api.h"
#include "util/status.h"
#include "util/types.h"

namespace kpj::api {

/// Parsed command line: `<command> [--flag value | --flag=value]...`
/// Shared by kpj_cli (subcommand grammar) and kpjd/kpj_client; hoisted
/// here from src/cli so every tool validates flags through one path.
struct ParsedArgs {
  std::string command;
  std::map<std::string, std::string> flags;

  bool Has(const std::string& name) const { return flags.count(name) != 0; }
  std::optional<std::string> Get(const std::string& name) const;
  /// Integer flag with default; Status on malformed value.
  Result<int64_t> GetInt(const std::string& name, int64_t def) const;
  /// Flag required to be present.
  Result<std::string> Require(const std::string& name) const;
};

/// Parses argv-style tokens (excluding the program name). Flags may be
/// written `--name value` or `--name=value`; bare `--name` stores "".
Result<ParsedArgs> ParseArgs(std::span<const std::string> args);

/// ParseArgs for flag-only tools (kpjd): no leading subcommand token;
/// `command` is left empty.
Result<ParsedArgs> ParseFlagsOnly(std::span<const std::string> args);

/// Parses "1,2,3" into node ids.
Result<std::vector<NodeId>> ParseNodeList(const std::string& text);

/// Defaults the shared engine-flag vocabulary starts from. kpj_cli and
/// kpjd both use {workers=1, cache_mb=64}; tests construct EngineConfig
/// directly (cache off) instead.
struct EngineConfigDefaults {
  unsigned workers = 1;
  size_t cache_mb = 64;
};

/// Reads the shared engine-option vocabulary — one validation path and one
/// error format for every tool:
///   --workers N        worker pool size (>= 1; --threads is an alias)
///   --intra-threads N  per-query lanes (>= 0; 0 = auto-split)
///   --cache-mb MB | --no-cache   (mutually exclusive)
///   --oracle alt|hublabel
///   --deadline-ms MS   default per-query deadline (>= 0; 0 = unbounded)
///   --slow-query-ms MS slow-query log threshold (>= 0; 0 = off)
///   --algorithm NAME   solver selection ("auto" = adaptive planner)
///   --alpha A          iter-bound growth factor (> 1)
/// Unlisted flags are untouched, so commands can mix in their own.
Result<EngineConfig> ParseEngineConfig(const ParsedArgs& args,
                                       EngineConfigDefaults defaults = {});

/// Reads just the --threads flag (default `def`, must be >= 1) for the
/// index-building commands that take a thread count without the rest of
/// the engine vocabulary.
Result<unsigned> ParseThreadsFlag(const ParsedArgs& args, int64_t def = 1);

}  // namespace kpj::api

#endif  // KPJ_API_OPTIONS_PARSE_H_
