#ifndef KPJ_API_API_H_
#define KPJ_API_API_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.h"
#include "core/kpj_query.h"
#include "index/distance_oracle.h"
#include "util/status.h"
#include "util/types.h"

namespace kpj::api {

/// Wire protocol version. Rules (docs/PROTOCOL.md "Versioning"):
///  * every request and response carries a `v` field;
///  * a server answers requests with `v <= kApiVersion` (older clients keep
///    working) and rejects newer versions with kInvalidArgument;
///  * unknown fields are ignored on both sides, so additive evolution does
///    not need a version bump — only semantic changes do.
inline constexpr uint32_t kApiVersion = 1;

/// Wire status codes: the union of query-level outcomes (validation,
/// deadline, cancellation) and service-level outcomes (overload shedding,
/// drain). These are the *stable* names clients switch on; the in-process
/// kpj::StatusCode stays an implementation detail.
enum class StatusCode : uint32_t {
  kOk = 0,
  /// Malformed request or query validation failure.
  kInvalidArgument = 1,
  kNotFound = 2,
  /// Deadline expired; the response still carries the proven path prefix.
  kDeadlineExceeded = 3,
  kCancelled = 4,
  /// Shed by admission control: the accept queue was full, or the queue
  /// time consumed the whole deadline before a worker was free. The query
  /// was never started; retry against a less loaded server.
  kOverloaded = 5,
  /// The server is draining (or has no serving instance) and accepts no
  /// new work.
  kUnavailable = 6,
  /// Anything else (I/O, corruption, internal invariants).
  kInternal = 7,
};

/// Stable wire spelling ("ok", "invalid_argument", ...).
const char* StatusCodeName(StatusCode code);
Result<StatusCode> ParseStatusCode(std::string_view name);

/// Maps an in-process status onto the wire vocabulary.
StatusCode FromCoreStatus(const kpj::Status& status);

/// Parses an oracle spelling as used by --oracle and the wire ("alt",
/// "hublabel").
Result<OracleKind> ParseOracleKind(std::string_view name);

/// Parses an algorithm name as printed by AlgorithmName (case-insensitive,
/// '-'/'_' interchangeable): "DA", "da-spt", "IterBoundI", ... plus
/// "auto" for the adaptive per-query planner (Algorithm::kAuto).
Result<Algorithm> ParseAlgorithm(const std::string& name);

/// One engine configuration, shared verbatim by kpj_cli, kpjd, benches and
/// tests — the consolidation of the old loose `KpjEngineOptions` /
/// `KpjOptions` / CLI-flag triple into a single wire-serializable struct.
/// Field vocabulary matches the shared flag parser (api/options_parse.h).
struct EngineConfig {
  /// Worker threads; 0 picks the hardware concurrency.
  unsigned workers = 0;
  /// Intra-query deviation lanes (1 = sequential, 0 = auto-split).
  unsigned intra_threads = 1;
  /// Cross-query reuse cache budget in MiB; 0 disables. The CLI and the
  /// daemon default this to 64 via the flag parser; the struct default
  /// matches the core engine (off) so migrated tests keep cold-run
  /// behavior unless they opt in.
  size_t cache_mb = 0;
  /// Default per-query deadline in ms; 0 = unbounded.
  double deadline_ms = 0.0;
  /// Slow-query log threshold in ms; 0 disables.
  double slow_query_ms = 0.0;
  Algorithm algorithm = Algorithm::kIterBoundSptI;
  /// τ growth factor for the iteratively bounding solvers; must be > 1.
  double alpha = 1.1;
  /// Which attached distance oracle the instance should select. Applied at
  /// instance level (KpjInstance::SelectOracle), not in ToEngineOptions():
  /// the engine resolves a null solver oracle from the instance.
  OracleKind oracle = OracleKind::kAlt;
  /// ALT only: evaluate at most this many landmarks per query; 0 = all.
  uint32_t max_active_landmarks = 0;
  /// Advisory hardware clamp on explicit worker counts; tests turn this
  /// off to prove determinism under oversubscription.
  bool clamp_to_hardware = true;

  /// Range checks with the same error text as the flag parser.
  kpj::Status Validate() const;

  /// Lowers to the core engine options. The solver oracle pointer is left
  /// null — engines resolve it from the instance's selected oracle.
  KpjEngineOptions ToEngineOptions() const;
};

/// One (G)KPJ query as it travels over the wire. `sources.size() == 1` is
/// the paper's KPJ query; multiple sources form GKPJ. Node ids are always
/// original (user-visible) ids.
struct QueryRequest {
  std::vector<NodeId> sources;
  std::vector<NodeId> targets;
  uint32_t k = 1;
  /// Per-query deadline in ms. Negative = inherit the server's default;
  /// 0 = explicitly unbounded.
  double deadline_ms = -1.0;
  /// Per-query algorithm override (additive v1 field `algorithm`): empty
  /// inherits the server's configured algorithm; an AlgorithmName spelling
  /// forces that solver for this query; "auto" engages the adaptive
  /// planner for this query. Unknown spellings are rejected.
  std::string algorithm;

  KpjQuery ToQuery() const;
  static QueryRequest FromQuery(const KpjQuery& query);
};

/// One result path: node sequence (original ids) plus its length.
struct PathPayload {
  std::vector<NodeId> nodes;
  PathLength length = 0;
};

/// Answer to one QueryRequest. On kOk `paths` is the complete top-k answer;
/// on kDeadlineExceeded/kCancelled it is the proven prefix; on any other
/// status it is empty and `message` says why.
struct QueryResponse {
  StatusCode status = StatusCode::kOk;
  std::string message;
  std::vector<PathPayload> paths;
  /// Serving-state epoch that answered (increments on hot swap). All paths
  /// in one response come from exactly one epoch.
  uint64_t epoch = 0;
  /// Solver wall time in ms (excludes queue time).
  double elapsed_ms = 0.0;
  /// Time spent in the admission queue before a worker was free.
  double queue_ms = 0.0;
  /// Work-counter excerpt, for client-side observability.
  uint64_t sp_computations = 0;
  uint64_t nodes_settled = 0;
  /// Additive v1 fields: the algorithm that produced the paths
  /// (AlgorithmName spelling) and, when the adaptive planner made the
  /// choice, which rule of its cost model fired. Both empty on responses
  /// that never reached a solver (validation failures, shed queries).
  std::string algorithm_chosen;
  std::string planner_reason;
};

/// An ordered batch; responses come back in request order. The batch-level
/// deadline applies to each query (same contract as KpjEngine::RunBatch).
struct BatchRequest {
  std::vector<QueryRequest> queries;
  double deadline_ms = -1.0;
};

struct BatchResponse {
  StatusCode status = StatusCode::kOk;
  std::string message;
  std::vector<QueryResponse> results;
};

/// Builds the wire response for one executed query. A non-ok Result
/// (validation failure) maps onto the wire status with empty paths; a
/// partial KpjResult keeps its proven prefix.
QueryResponse BuildQueryResponse(const Result<KpjResult>& result,
                                 uint64_t epoch, double elapsed_ms,
                                 double queue_ms);

}  // namespace kpj::api

#endif  // KPJ_API_API_H_
