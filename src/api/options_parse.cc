#include "api/options_parse.h"

#include "util/concurrency.h"
#include "util/string_util.h"

namespace kpj::api {

std::optional<std::string> ParsedArgs::Get(const std::string& name) const {
  auto it = flags.find(name);
  if (it == flags.end()) return std::nullopt;
  return it->second;
}

Result<int64_t> ParsedArgs::GetInt(const std::string& name,
                                   int64_t def) const {
  auto it = flags.find(name);
  if (it == flags.end()) return def;
  auto parsed = ParseInt(it->second);
  if (!parsed) {
    return Status::InvalidArgument("--" + name + " expects an integer, got '" +
                                   it->second + "'");
  }
  return *parsed;
}

Result<std::string> ParsedArgs::Require(const std::string& name) const {
  auto it = flags.find(name);
  if (it == flags.end()) {
    return Status::InvalidArgument("missing required flag --" + name);
  }
  return it->second;
}

namespace {

Status ParseFlagTokens(std::span<const std::string> args, size_t first,
                       ParsedArgs* out) {
  for (size_t i = first; i < args.size(); ++i) {
    const std::string& token = args[i];
    if (token.rfind("--", 0) != 0) {
      return Status::InvalidArgument("unexpected argument '" + token + "'");
    }
    std::string body = token.substr(2);
    if (body.empty()) {
      return Status::InvalidArgument("empty flag '--'");
    }
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      out->flags[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
      out->flags[body] = args[i + 1];
      ++i;
    } else {
      out->flags[body] = "";
    }
  }
  return Status::Ok();
}

}  // namespace

Result<ParsedArgs> ParseArgs(std::span<const std::string> args) {
  if (args.empty()) {
    return Status::InvalidArgument("missing command (try 'help')");
  }
  ParsedArgs out;
  out.command = args[0];
  KPJ_RETURN_IF_ERROR(ParseFlagTokens(args, 1, &out));
  return out;
}

Result<ParsedArgs> ParseFlagsOnly(std::span<const std::string> args) {
  ParsedArgs out;
  KPJ_RETURN_IF_ERROR(ParseFlagTokens(args, 0, &out));
  return out;
}

Result<std::vector<NodeId>> ParseNodeList(const std::string& text) {
  std::vector<NodeId> out;
  for (std::string_view part : SplitChar(text, ',')) {
    auto v = ParseInt(part);
    if (!v || *v < 0) {
      return Status::InvalidArgument("bad node id '" + std::string(part) +
                                     "'");
    }
    out.push_back(static_cast<NodeId>(*v));
  }
  if (out.empty()) return Status::InvalidArgument("empty node list");
  return out;
}

Result<unsigned> ParseThreadsFlag(const ParsedArgs& args, int64_t def) {
  Result<int64_t> threads = args.GetInt("threads", def);
  if (!threads.ok()) return threads.status();
  if (threads.value() < 1) {
    return Status::InvalidArgument("--threads must be >= 1");
  }
  return static_cast<unsigned>(threads.value());
}

namespace {

/// --workers with --threads kept as the historical alias; the error names
/// whichever spelling the user wrote.
Result<unsigned> ParseWorkersFlag(const ParsedArgs& args, unsigned def) {
  const char* flag = args.Has("workers") ? "workers" : "threads";
  Result<int64_t> workers =
      args.GetInt(flag, static_cast<int64_t>(def));
  if (!workers.ok()) return workers.status();
  if (workers.value() < 1) {
    return Status::InvalidArgument(std::string("--") + flag +
                                   " must be >= 1");
  }
  return static_cast<unsigned>(workers.value());
}

Result<unsigned> ParseIntraThreadsFlag(const ParsedArgs& args) {
  Result<int64_t> intra = args.GetInt("intra-threads", 1);
  if (!intra.ok()) return intra.status();
  if (intra.value() < 0) {
    return Status::InvalidArgument("--intra-threads must be >= 0");
  }
  unsigned lanes = static_cast<unsigned>(intra.value());
  // Explicit lane counts share the advisory hardware clamp with --workers.
  if (lanes > 1) lanes = EffectiveWorkers(lanes);
  return lanes;
}

Result<size_t> ParseCacheFlag(const ParsedArgs& args, size_t def) {
  if (args.Has("no-cache")) {
    if (args.Get("cache-mb").has_value()) {
      return Status::InvalidArgument(
          "--no-cache and --cache-mb are mutually exclusive");
    }
    return size_t{0};
  }
  Result<int64_t> mb = args.GetInt("cache-mb", static_cast<int64_t>(def));
  if (!mb.ok()) return mb.status();
  if (mb.value() < 0) {
    return Status::InvalidArgument("--cache-mb must be >= 0");
  }
  return static_cast<size_t>(mb.value());
}

Result<double> ParseNonNegativeMs(const ParsedArgs& args,
                                  const std::string& name) {
  auto text = args.Get(name);
  if (!text.has_value()) return 0.0;
  auto parsed = ParseDouble(*text);
  if (!parsed || *parsed < 0.0) {
    return Status::InvalidArgument("--" + name + " must be >= 0");
  }
  return *parsed;
}

}  // namespace

Result<EngineConfig> ParseEngineConfig(const ParsedArgs& args,
                                       EngineConfigDefaults defaults) {
  EngineConfig config;

  Result<unsigned> workers = ParseWorkersFlag(args, defaults.workers);
  if (!workers.ok()) return workers.status();
  config.workers = workers.value();

  Result<unsigned> intra = ParseIntraThreadsFlag(args);
  if (!intra.ok()) return intra.status();
  config.intra_threads = intra.value();

  Result<size_t> cache_mb = ParseCacheFlag(args, defaults.cache_mb);
  if (!cache_mb.ok()) return cache_mb.status();
  config.cache_mb = cache_mb.value();

  if (auto name = args.Get("oracle"); name.has_value()) {
    Result<OracleKind> oracle = ParseOracleKind(*name);
    if (!oracle.ok()) return oracle.status();
    config.oracle = oracle.value();
  }

  Result<double> deadline = ParseNonNegativeMs(args, "deadline-ms");
  if (!deadline.ok()) return deadline.status();
  config.deadline_ms = deadline.value();

  Result<double> slow_query = ParseNonNegativeMs(args, "slow-query-ms");
  if (!slow_query.ok()) return slow_query.status();
  config.slow_query_ms = slow_query.value();

  if (auto name = args.Get("algorithm"); name.has_value()) {
    Result<Algorithm> algorithm = ParseAlgorithm(*name);
    if (!algorithm.ok()) return algorithm.status();
    config.algorithm = algorithm.value();
  }

  if (auto alpha = args.Get("alpha"); alpha.has_value()) {
    auto parsed = ParseDouble(*alpha);
    if (!parsed || *parsed <= 1.0) {
      return Status::InvalidArgument("--alpha must be > 1");
    }
    config.alpha = *parsed;
  }

  KPJ_RETURN_IF_ERROR(config.Validate());
  return config;
}

}  // namespace kpj::api
