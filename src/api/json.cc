#include "api/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "util/string_util.h"

namespace kpj::api {
namespace {

/// Wire objects nest envelope -> batch -> query -> paths -> nodes; 64
/// levels is an order of magnitude of headroom while keeping recursive
/// descent safe on untrusted input.
constexpr int kMaxDepth = 64;

struct Parser {
  std::string_view text;
  size_t pos = 0;

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }

  void SkipWhitespace() {
    while (!AtEnd() && (text[pos] == ' ' || text[pos] == '\t' ||
                        text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos) + ": " + what);
  }

  bool Consume(char c) {
    if (AtEnd() || text[pos] != c) return false;
    ++pos;
    return true;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text.substr(pos, literal.size()) != literal) return false;
    pos += literal.size();
    return true;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (AtEnd()) return Error("unexpected end of input");
    char c = Peek();
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      Result<std::string> s = ParseString();
      if (!s.ok()) return s.status();
      return JsonValue::Str(std::move(s).value());
    }
    if (ConsumeLiteral("true")) return JsonValue::Bool(true);
    if (ConsumeLiteral("false")) return JsonValue::Bool(false);
    if (ConsumeLiteral("null")) return JsonValue::Null();
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    return Error(std::string("unexpected character '") + c + "'");
  }

  Result<JsonValue> ParseObject(int depth) {
    ++pos;  // '{'
    JsonValue object = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return object;
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') return Error("expected object key");
      Result<std::string> key = ParseString();
      if (!key.ok()) return key.status();
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      Result<JsonValue> value = ParseValue(depth + 1);
      if (!value.ok()) return value.status();
      object.Set(std::move(key).value(), std::move(value).value());
      SkipWhitespace();
      if (Consume('}')) return object;
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    ++pos;  // '['
    JsonValue array = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return array;
    while (true) {
      Result<JsonValue> value = ParseValue(depth + 1);
      if (!value.ok()) return value.status();
      array.Append(std::move(value).value());
      SkipWhitespace();
      if (Consume(']')) return array;
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos;  // '"'
    std::string out;
    while (true) {
      if (AtEnd()) return Error("unterminated string");
      char c = text[pos++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (AtEnd()) return Error("unterminated escape");
      char e = text[pos++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          Result<uint32_t> unit = ParseHex4();
          if (!unit.ok()) return unit.status();
          uint32_t code = unit.value();
          // Combine a surrogate pair into one code point.
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (!ConsumeLiteral("\\u")) {
              return Error("unpaired high surrogate");
            }
            Result<uint32_t> low = ParseHex4();
            if (!low.ok()) return low.status();
            if (low.value() < 0xDC00 || low.value() > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low.value() - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(code, &out);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Result<uint32_t> ParseHex4() {
    if (pos + 4 > text.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text[pos++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("non-hex digit in \\u escape");
      }
    }
    return value;
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos;
    if (Consume('-')) {
      // Sign consumed; digits follow.
    }
    if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Error("malformed number");
    }
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      ++pos;
    }
    bool integral = true;
    if (!AtEnd() && Peek() == '.') {
      integral = false;
      ++pos;
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("malformed fraction");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos;
      }
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      integral = false;
      ++pos;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos;
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("malformed exponent");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos;
      }
    }
    std::string_view token = text.substr(start, pos - start);
    if (integral) {
      int64_t value = 0;
      auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && ptr == token.data() + token.size()) {
        return JsonValue::Int(value);
      }
      // Out-of-int64-range integer literal: fall through to double.
    }
    double value = std::strtod(std::string(token).c_str(), nullptr);
    if (!std::isfinite(value)) return Error("number out of range");
    return JsonValue::Double(value);
  }
};

void AppendDouble(double v, std::string* out) {
  // JSON has no NaN/Inf; mirror the engine exposition's FiniteOrZero.
  if (!std::isfinite(v)) v = 0.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

Status MissingField(std::string_view key) {
  return Status::InvalidArgument("missing field '" + std::string(key) + "'");
}

Status WrongType(std::string_view key, const char* want) {
  return Status::InvalidArgument("field '" + std::string(key) +
                                 "' must be " + want);
}

Result<int64_t> IntOf(const JsonValue& v, std::string_view key) {
  if (v.is_int()) return v.int_value();
  if (v.is_double()) {
    double d = v.number_value();
    if (d == std::floor(d) &&
        d >= static_cast<double>(std::numeric_limits<int64_t>::min()) &&
        d <= static_cast<double>(std::numeric_limits<int64_t>::max())) {
      return static_cast<int64_t>(d);
    }
  }
  return WrongType(key, "an integer");
}

}  // namespace

JsonValue JsonValue::Uint(uint64_t v) {
  if (v > static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
    return Int(std::numeric_limits<int64_t>::max());
  }
  return Int(static_cast<int64_t>(v));
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const Member& m : members()) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

void JsonValue::DumpTo(std::string* out) const {
  switch (kind()) {
    case Kind::kNull:
      out->append("null");
      return;
    case Kind::kBool:
      out->append(bool_value() ? "true" : "false");
      return;
    case Kind::kInt:
      out->append(std::to_string(int_value()));
      return;
    case Kind::kDouble:
      AppendDouble(number_value(), out);
      return;
    case Kind::kString:
      out->append(JsonEscape(string_value()));
      return;
    case Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& item : items()) {
        if (!first) out->push_back(',');
        first = false;
        item.DumpTo(out);
      }
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const Member& m : members()) {
        if (!first) out->push_back(',');
        first = false;
        out->append(JsonEscape(m.first));
        out->push_back(':');
        m.second.DumpTo(out);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  Parser parser{text};
  Result<JsonValue> value = parser.ParseValue(0);
  if (!value.ok()) return value.status();
  parser.SkipWhitespace();
  if (!parser.AtEnd()) {
    return parser.Error("trailing characters after document");
  }
  return value;
}

Result<int64_t> GetInt(const JsonValue& object, std::string_view key) {
  const JsonValue* v = object.Find(key);
  if (v == nullptr) return MissingField(key);
  return IntOf(*v, key);
}

Result<int64_t> GetInt(const JsonValue& object, std::string_view key,
                       int64_t def) {
  const JsonValue* v = object.Find(key);
  if (v == nullptr || v->is_null()) return def;
  return IntOf(*v, key);
}

Result<double> GetDouble(const JsonValue& object, std::string_view key,
                         double def) {
  const JsonValue* v = object.Find(key);
  if (v == nullptr || v->is_null()) return def;
  if (!v->is_number()) return WrongType(key, "a number");
  return v->number_value();
}

Result<std::string> GetString(const JsonValue& object, std::string_view key) {
  const JsonValue* v = object.Find(key);
  if (v == nullptr) return MissingField(key);
  if (!v->is_string()) return WrongType(key, "a string");
  return v->string_value();
}

Result<std::string> GetString(const JsonValue& object, std::string_view key,
                              std::string def) {
  const JsonValue* v = object.Find(key);
  if (v == nullptr || v->is_null()) return def;
  if (!v->is_string()) return WrongType(key, "a string");
  return v->string_value();
}

Result<bool> GetBool(const JsonValue& object, std::string_view key,
                     bool def) {
  const JsonValue* v = object.Find(key);
  if (v == nullptr || v->is_null()) return def;
  if (!v->is_bool()) return WrongType(key, "a boolean");
  return v->bool_value();
}

}  // namespace kpj::api
