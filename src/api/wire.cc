#include "api/wire.h"

#include <limits>
#include <utility>

#include "util/trace.h"

namespace kpj::api {
namespace {

/// Reads a non-negative integer field into U (uint32/uint64), rejecting
/// negatives and overflow with the shared "field 'k' ..." error format.
template <typename U>
Result<U> GetUint(const JsonValue& object, std::string_view key, U def) {
  Result<int64_t> value = GetInt(object, key, static_cast<int64_t>(def));
  if (!value.ok()) return value.status();
  if (value.value() < 0 ||
      static_cast<uint64_t>(value.value()) > std::numeric_limits<U>::max()) {
    return Status::InvalidArgument("field '" + std::string(key) +
                                   "' out of range");
  }
  return static_cast<U>(value.value());
}

/// Reads an array of node ids.
Result<std::vector<NodeId>> GetNodeArray(const JsonValue& object,
                                         std::string_view key) {
  const JsonValue* field = object.Find(key);
  if (field == nullptr || !field->is_array()) {
    return Status::InvalidArgument("field '" + std::string(key) +
                                   "' must be an array of node ids");
  }
  std::vector<NodeId> nodes;
  nodes.reserve(field->items().size());
  for (const JsonValue& item : field->items()) {
    if (!item.is_int() || item.int_value() < 0) {
      return Status::InvalidArgument("field '" + std::string(key) +
                                     "' must be an array of node ids");
    }
    nodes.push_back(static_cast<NodeId>(item.int_value()));
  }
  return nodes;
}

JsonValue NodeArray(const std::vector<NodeId>& nodes) {
  JsonValue array = JsonValue::Array();
  for (NodeId node : nodes) array.Append(JsonValue::Uint(node));
  return array;
}

}  // namespace

const char* RequestTypeName(RequestType type) {
  switch (type) {
    case RequestType::kQuery: return "query";
    case RequestType::kBatch: return "batch";
    case RequestType::kMetrics: return "metrics";
    case RequestType::kHealth: return "health";
    case RequestType::kDrain: return "drain";
    case RequestType::kSwap: return "swap";
    case RequestType::kStats: return "stats";
  }
  return "query";
}

Result<RequestType> ParseRequestType(std::string_view name) {
  constexpr RequestType kAll[] = {
      RequestType::kQuery,  RequestType::kBatch, RequestType::kMetrics,
      RequestType::kHealth, RequestType::kDrain, RequestType::kSwap,
      RequestType::kStats,
  };
  for (RequestType type : kAll) {
    if (name == RequestTypeName(type)) return type;
  }
  return Status::InvalidArgument("unknown request type '" +
                                 std::string(name) + "'");
}

// --- QueryRequest ---------------------------------------------------------

JsonValue ToJson(const QueryRequest& request) {
  JsonValue object = JsonValue::Object();
  object.Set("sources", NodeArray(request.sources));
  object.Set("targets", NodeArray(request.targets));
  object.Set("k", JsonValue::Uint(request.k));
  if (request.deadline_ms >= 0.0) {
    object.Set("deadline_ms", JsonValue::Double(request.deadline_ms));
  }
  // Additive v1 field: absent means "inherit the server's algorithm".
  if (!request.algorithm.empty()) {
    object.Set("algorithm", JsonValue::Str(request.algorithm));
  }
  return object;
}

Result<QueryRequest> QueryRequestFromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("query payload must be an object");
  }
  QueryRequest request;
  Result<std::vector<NodeId>> sources = GetNodeArray(json, "sources");
  if (!sources.ok()) return sources.status();
  request.sources = std::move(sources).value();
  Result<std::vector<NodeId>> targets = GetNodeArray(json, "targets");
  if (!targets.ok()) return targets.status();
  request.targets = std::move(targets).value();
  Result<uint32_t> k = GetUint<uint32_t>(json, "k", 1);
  if (!k.ok()) return k.status();
  request.k = k.value();
  Result<double> deadline = GetDouble(json, "deadline_ms", -1.0);
  if (!deadline.ok()) return deadline.status();
  request.deadline_ms = deadline.value();
  Result<std::string> algorithm = GetString(json, "algorithm", "");
  if (!algorithm.ok()) return algorithm.status();
  request.algorithm = std::move(algorithm).value();
  return request;
}

// --- QueryResponse --------------------------------------------------------

JsonValue ToJson(const QueryResponse& response) {
  JsonValue object = JsonValue::Object();
  object.Set("status", JsonValue::Str(StatusCodeName(response.status)));
  if (!response.message.empty()) {
    object.Set("message", JsonValue::Str(response.message));
  }
  JsonValue paths = JsonValue::Array();
  for (const PathPayload& path : response.paths) {
    JsonValue entry = JsonValue::Object();
    entry.Set("nodes", NodeArray(path.nodes));
    entry.Set("length", JsonValue::Uint(path.length));
    paths.Append(std::move(entry));
  }
  object.Set("paths", std::move(paths));
  object.Set("epoch", JsonValue::Uint(response.epoch));
  object.Set("elapsed_ms", JsonValue::Double(response.elapsed_ms));
  object.Set("queue_ms", JsonValue::Double(response.queue_ms));
  object.Set("sp_computations", JsonValue::Uint(response.sp_computations));
  object.Set("nodes_settled", JsonValue::Uint(response.nodes_settled));
  // Additive v1 fields: omitted when the query never reached a solver, so
  // pre-planner clients see byte-identical error responses.
  if (!response.algorithm_chosen.empty()) {
    object.Set("algorithm_chosen", JsonValue::Str(response.algorithm_chosen));
  }
  if (!response.planner_reason.empty()) {
    object.Set("planner_reason", JsonValue::Str(response.planner_reason));
  }
  return object;
}

Result<QueryResponse> QueryResponseFromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("query response must be an object");
  }
  QueryResponse response;
  Result<std::string> status = GetString(json, "status");
  if (!status.ok()) return status.status();
  Result<StatusCode> code = ParseStatusCode(status.value());
  if (!code.ok()) return code.status();
  response.status = code.value();
  Result<std::string> message = GetString(json, "message", "");
  if (!message.ok()) return message.status();
  response.message = std::move(message).value();
  const JsonValue* paths = json.Find("paths");
  if (paths == nullptr || !paths->is_array()) {
    return Status::InvalidArgument("field 'paths' must be an array");
  }
  response.paths.reserve(paths->items().size());
  for (const JsonValue& entry : paths->items()) {
    if (!entry.is_object()) {
      return Status::InvalidArgument("field 'paths' must hold objects");
    }
    PathPayload path;
    Result<std::vector<NodeId>> nodes = GetNodeArray(entry, "nodes");
    if (!nodes.ok()) return nodes.status();
    path.nodes = std::move(nodes).value();
    Result<uint64_t> length = GetUint<uint64_t>(entry, "length", 0);
    if (!length.ok()) return length.status();
    path.length = length.value();
    response.paths.push_back(std::move(path));
  }
  Result<uint64_t> epoch = GetUint<uint64_t>(json, "epoch", 0);
  if (!epoch.ok()) return epoch.status();
  response.epoch = epoch.value();
  Result<double> elapsed = GetDouble(json, "elapsed_ms", 0.0);
  if (!elapsed.ok()) return elapsed.status();
  response.elapsed_ms = elapsed.value();
  Result<double> queued = GetDouble(json, "queue_ms", 0.0);
  if (!queued.ok()) return queued.status();
  response.queue_ms = queued.value();
  Result<uint64_t> sp = GetUint<uint64_t>(json, "sp_computations", 0);
  if (!sp.ok()) return sp.status();
  response.sp_computations = sp.value();
  Result<uint64_t> settled = GetUint<uint64_t>(json, "nodes_settled", 0);
  if (!settled.ok()) return settled.status();
  response.nodes_settled = settled.value();
  Result<std::string> chosen = GetString(json, "algorithm_chosen", "");
  if (!chosen.ok()) return chosen.status();
  response.algorithm_chosen = std::move(chosen).value();
  Result<std::string> reason = GetString(json, "planner_reason", "");
  if (!reason.ok()) return reason.status();
  response.planner_reason = std::move(reason).value();
  return response;
}

// --- BatchRequest / BatchResponse -----------------------------------------

JsonValue ToJson(const BatchRequest& request) {
  JsonValue object = JsonValue::Object();
  JsonValue queries = JsonValue::Array();
  for (const QueryRequest& query : request.queries) {
    queries.Append(ToJson(query));
  }
  object.Set("queries", std::move(queries));
  if (request.deadline_ms >= 0.0) {
    object.Set("deadline_ms", JsonValue::Double(request.deadline_ms));
  }
  return object;
}

Result<BatchRequest> BatchRequestFromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("batch payload must be an object");
  }
  const JsonValue* queries = json.Find("queries");
  if (queries == nullptr || !queries->is_array()) {
    return Status::InvalidArgument("field 'queries' must be an array");
  }
  BatchRequest request;
  request.queries.reserve(queries->items().size());
  for (const JsonValue& entry : queries->items()) {
    Result<QueryRequest> query = QueryRequestFromJson(entry);
    if (!query.ok()) return query.status();
    request.queries.push_back(std::move(query).value());
  }
  Result<double> deadline = GetDouble(json, "deadline_ms", -1.0);
  if (!deadline.ok()) return deadline.status();
  request.deadline_ms = deadline.value();
  return request;
}

JsonValue ToJson(const BatchResponse& response) {
  JsonValue object = JsonValue::Object();
  object.Set("status", JsonValue::Str(StatusCodeName(response.status)));
  if (!response.message.empty()) {
    object.Set("message", JsonValue::Str(response.message));
  }
  JsonValue results = JsonValue::Array();
  for (const QueryResponse& result : response.results) {
    results.Append(ToJson(result));
  }
  object.Set("results", std::move(results));
  return object;
}

Result<BatchResponse> BatchResponseFromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("batch response must be an object");
  }
  BatchResponse response;
  Result<std::string> status = GetString(json, "status");
  if (!status.ok()) return status.status();
  Result<StatusCode> code = ParseStatusCode(status.value());
  if (!code.ok()) return code.status();
  response.status = code.value();
  Result<std::string> message = GetString(json, "message", "");
  if (!message.ok()) return message.status();
  response.message = std::move(message).value();
  const JsonValue* results = json.Find("results");
  if (results == nullptr || !results->is_array()) {
    return Status::InvalidArgument("field 'results' must be an array");
  }
  response.results.reserve(results->items().size());
  for (const JsonValue& entry : results->items()) {
    Result<QueryResponse> result = QueryResponseFromJson(entry);
    if (!result.ok()) return result.status();
    response.results.push_back(std::move(result).value());
  }
  return response;
}

// --- MetricsRequest -------------------------------------------------------

JsonValue ToJson(const MetricsRequest& request) {
  JsonValue object = JsonValue::Object();
  object.Set("format", JsonValue::Str(request.format));
  return object;
}

Result<MetricsRequest> MetricsRequestFromJson(const JsonValue& json) {
  MetricsRequest request;
  if (json.is_null()) return request;  // Format defaults to json.
  if (!json.is_object()) {
    return Status::InvalidArgument("metrics payload must be an object");
  }
  Result<std::string> format = GetString(json, "format", "json");
  if (!format.ok()) return format.status();
  request.format = std::move(format).value();
  if (request.format != "json" && request.format != "prom") {
    return Status::InvalidArgument("field 'format' must be 'json' or 'prom'");
  }
  return request;
}

// --- SwapRequest ----------------------------------------------------------

JsonValue ToJson(const SwapRequest& request) {
  JsonValue object = JsonValue::Object();
  object.Set("graph", JsonValue::Str(request.graph));
  if (!request.landmarks.empty()) {
    object.Set("landmarks", JsonValue::Str(request.landmarks));
  }
  if (request.oracle.has_value()) {
    object.Set("oracle", JsonValue::Str(OracleKindName(*request.oracle)));
  }
  return object;
}

Result<SwapRequest> SwapRequestFromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("swap payload must be an object");
  }
  SwapRequest request;
  Result<std::string> graph = GetString(json, "graph");
  if (!graph.ok()) return graph.status();
  request.graph = std::move(graph).value();
  Result<std::string> landmarks = GetString(json, "landmarks", "");
  if (!landmarks.ok()) return landmarks.status();
  request.landmarks = std::move(landmarks).value();
  if (const JsonValue* oracle = json.Find("oracle"); oracle != nullptr) {
    if (!oracle->is_string()) {
      return Status::InvalidArgument("field 'oracle' must be a string");
    }
    Result<OracleKind> kind = ParseOracleKind(oracle->string_value());
    if (!kind.ok()) {
      return Status::InvalidArgument("field 'oracle' must be 'alt' or "
                                     "'hublabel'");
    }
    request.oracle = kind.value();
  }
  return request;
}

// --- HealthInfo -----------------------------------------------------------

JsonValue ToJson(const HealthInfo& info) {
  JsonValue object = JsonValue::Object();
  object.Set("serving", JsonValue::Bool(info.serving));
  object.Set("epoch", JsonValue::Uint(info.epoch));
  object.Set("graph", JsonValue::Str(info.graph));
  object.Set("uptime_ms", JsonValue::Uint(info.uptime_ms));
  object.Set("in_flight", JsonValue::Uint(info.in_flight));
  object.Set("nodes", JsonValue::Uint(info.nodes));
  return object;
}

Result<HealthInfo> HealthInfoFromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("health payload must be an object");
  }
  HealthInfo info;
  Result<bool> serving = GetBool(json, "serving", false);
  if (!serving.ok()) return serving.status();
  info.serving = serving.value();
  Result<uint64_t> epoch = GetUint<uint64_t>(json, "epoch", 0);
  if (!epoch.ok()) return epoch.status();
  info.epoch = epoch.value();
  Result<std::string> graph = GetString(json, "graph", "");
  if (!graph.ok()) return graph.status();
  info.graph = std::move(graph).value();
  Result<uint64_t> uptime = GetUint<uint64_t>(json, "uptime_ms", 0);
  if (!uptime.ok()) return uptime.status();
  info.uptime_ms = uptime.value();
  Result<uint64_t> in_flight = GetUint<uint64_t>(json, "in_flight", 0);
  if (!in_flight.ok()) return in_flight.status();
  info.in_flight = in_flight.value();
  Result<uint64_t> nodes = GetUint<uint64_t>(json, "nodes", 0);
  if (!nodes.ok()) return nodes.status();
  info.nodes = nodes.value();
  return info;
}

// --- SwapInfo -------------------------------------------------------------

JsonValue ToJson(const SwapInfo& info) {
  JsonValue object = JsonValue::Object();
  object.Set("old_epoch", JsonValue::Uint(info.old_epoch));
  object.Set("new_epoch", JsonValue::Uint(info.new_epoch));
  object.Set("load_ms", JsonValue::Double(info.load_ms));
  return object;
}

Result<SwapInfo> SwapInfoFromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("swap response must be an object");
  }
  SwapInfo info;
  Result<uint64_t> old_epoch = GetUint<uint64_t>(json, "old_epoch", 0);
  if (!old_epoch.ok()) return old_epoch.status();
  info.old_epoch = old_epoch.value();
  Result<uint64_t> new_epoch = GetUint<uint64_t>(json, "new_epoch", 0);
  if (!new_epoch.ok()) return new_epoch.status();
  info.new_epoch = new_epoch.value();
  Result<double> load_ms = GetDouble(json, "load_ms", 0.0);
  if (!load_ms.ok()) return load_ms.status();
  info.load_ms = load_ms.value();
  return info;
}

// --- StatsInfo ------------------------------------------------------------

JsonValue ToJson(const StatsInfo& info) {
  JsonValue object = JsonValue::Object();
  object.Set("window_s", JsonValue::Uint(info.window_s));
  object.Set("requests", JsonValue::Uint(info.requests));
  object.Set("shed", JsonValue::Uint(info.shed));
  object.Set("errors", JsonValue::Uint(info.errors));
  object.Set("qps", JsonValue::Double(info.qps));
  object.Set("latency_mean_ms", JsonValue::Double(info.latency_mean_ms));
  object.Set("latency_p50_ms", JsonValue::Double(info.latency_p50_ms));
  object.Set("latency_p90_ms", JsonValue::Double(info.latency_p90_ms));
  object.Set("latency_p99_ms", JsonValue::Double(info.latency_p99_ms));
  object.Set("latency_max_ms", JsonValue::Double(info.latency_max_ms));
  object.Set("in_flight", JsonValue::Uint(info.in_flight));
  object.Set("epoch", JsonValue::Uint(info.epoch));
  JsonValue per_second = JsonValue::Array();
  for (uint64_t n : info.per_second) per_second.Append(JsonValue::Uint(n));
  object.Set("per_second", std::move(per_second));
  return object;
}

Result<StatsInfo> StatsInfoFromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("stats payload must be an object");
  }
  StatsInfo info;
  Result<uint64_t> window = GetUint<uint64_t>(json, "window_s", 0);
  if (!window.ok()) return window.status();
  info.window_s = window.value();
  Result<uint64_t> requests = GetUint<uint64_t>(json, "requests", 0);
  if (!requests.ok()) return requests.status();
  info.requests = requests.value();
  Result<uint64_t> shed = GetUint<uint64_t>(json, "shed", 0);
  if (!shed.ok()) return shed.status();
  info.shed = shed.value();
  Result<uint64_t> errors = GetUint<uint64_t>(json, "errors", 0);
  if (!errors.ok()) return errors.status();
  info.errors = errors.value();
  Result<double> qps = GetDouble(json, "qps", 0.0);
  if (!qps.ok()) return qps.status();
  info.qps = qps.value();
  Result<double> mean = GetDouble(json, "latency_mean_ms", 0.0);
  if (!mean.ok()) return mean.status();
  info.latency_mean_ms = mean.value();
  Result<double> p50 = GetDouble(json, "latency_p50_ms", 0.0);
  if (!p50.ok()) return p50.status();
  info.latency_p50_ms = p50.value();
  Result<double> p90 = GetDouble(json, "latency_p90_ms", 0.0);
  if (!p90.ok()) return p90.status();
  info.latency_p90_ms = p90.value();
  Result<double> p99 = GetDouble(json, "latency_p99_ms", 0.0);
  if (!p99.ok()) return p99.status();
  info.latency_p99_ms = p99.value();
  Result<double> max = GetDouble(json, "latency_max_ms", 0.0);
  if (!max.ok()) return max.status();
  info.latency_max_ms = max.value();
  Result<uint64_t> in_flight = GetUint<uint64_t>(json, "in_flight", 0);
  if (!in_flight.ok()) return in_flight.status();
  info.in_flight = in_flight.value();
  Result<uint64_t> epoch = GetUint<uint64_t>(json, "epoch", 0);
  if (!epoch.ok()) return epoch.status();
  info.epoch = epoch.value();
  if (const JsonValue* per_second = json.Find("per_second");
      per_second != nullptr) {
    if (!per_second->is_array()) {
      return Status::InvalidArgument("field 'per_second' must be an array");
    }
    info.per_second.reserve(per_second->items().size());
    for (const JsonValue& item : per_second->items()) {
      if (!item.is_int() || item.int_value() < 0) {
        return Status::InvalidArgument(
            "field 'per_second' must hold non-negative counts");
      }
      info.per_second.push_back(static_cast<uint64_t>(item.int_value()));
    }
  }
  return info;
}

// --- Envelopes ------------------------------------------------------------

namespace {

/// The request-side trace block: {"id":"<16 hex>","collect":bool}.
JsonValue TraceBlock(uint64_t trace_id, bool collect) {
  JsonValue block = JsonValue::Object();
  block.Set("id", JsonValue::Str(FormatTraceId(trace_id)));
  if (collect) block.Set("collect", JsonValue::Bool(true));
  return block;
}

}  // namespace

std::string SerializeRequest(const RequestEnvelope& request) {
  JsonValue object = JsonValue::Object();
  object.Set("v", JsonValue::Uint(request.version));
  object.Set("id", JsonValue::Uint(request.id));
  object.Set("type", JsonValue::Str(RequestTypeName(request.type)));
  if (!request.payload.is_null()) {
    object.Set("payload", request.payload);
  }
  if (request.trace_id != 0) {
    object.Set("trace", TraceBlock(request.trace_id, request.collect_spans));
  }
  return object.Dump();
}

namespace {

/// Shared envelope-prefix parsing: version rules + correlation id.
Result<std::pair<uint32_t, uint64_t>> ParseEnvelopePrefix(
    const JsonValue& object) {
  Result<uint32_t> version = GetUint<uint32_t>(object, "v", 0);
  if (!version.ok()) return version.status();
  if (version.value() == 0) {
    return Status::InvalidArgument("missing field 'v'");
  }
  if (version.value() > kApiVersion) {
    return Status::InvalidArgument(
        "unsupported protocol version " + std::to_string(version.value()) +
        " (this server speaks <= " + std::to_string(kApiVersion) + ")");
  }
  Result<uint64_t> id = GetUint<uint64_t>(object, "id", 0);
  if (!id.ok()) return id.status();
  return std::make_pair(version.value(), id.value());
}

}  // namespace

Result<RequestEnvelope> ParseRequest(std::string_view text) {
  Result<JsonValue> parsed = JsonValue::Parse(text);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& object = parsed.value();
  if (!object.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  Result<std::pair<uint32_t, uint64_t>> prefix = ParseEnvelopePrefix(object);
  if (!prefix.ok()) return prefix.status();
  RequestEnvelope request;
  request.version = prefix.value().first;
  request.id = prefix.value().second;
  Result<std::string> type = GetString(object, "type");
  if (!type.ok()) return type.status();
  Result<RequestType> parsed_type = ParseRequestType(type.value());
  if (!parsed_type.ok()) return parsed_type.status();
  request.type = parsed_type.value();
  if (const JsonValue* payload = object.Find("payload"); payload != nullptr) {
    request.payload = *payload;
  }
  // Trace context is best-effort telemetry: a malformed block parses as "no
  // trace" rather than failing the request.
  if (const JsonValue* trace = object.Find("trace");
      trace != nullptr && trace->is_object()) {
    if (const JsonValue* id = trace->Find("id");
        id != nullptr && id->is_string()) {
      request.trace_id = ParseTraceId(id->string_value());
    }
    if (const JsonValue* collect = trace->Find("collect");
        collect != nullptr && collect->is_bool()) {
      request.collect_spans = collect->bool_value();
    }
  }
  return request;
}

std::string SerializeResponse(const ResponseEnvelope& response) {
  JsonValue object = JsonValue::Object();
  object.Set("v", JsonValue::Uint(response.version));
  object.Set("id", JsonValue::Uint(response.id));
  object.Set("status", JsonValue::Str(StatusCodeName(response.status)));
  if (!response.message.empty()) {
    object.Set("message", JsonValue::Str(response.message));
  }
  if (!response.payload.is_null()) {
    object.Set("payload", response.payload);
  }
  if (response.trace_id != 0) {
    JsonValue trace = JsonValue::Object();
    trace.Set("id", JsonValue::Str(FormatTraceId(response.trace_id)));
    if (!response.trace_spans.empty()) {
      JsonValue spans = JsonValue::Array();
      for (const TraceSpanWire& span : response.trace_spans) {
        JsonValue entry = JsonValue::Object();
        entry.Set("name", JsonValue::Str(span.name));
        entry.Set("ts", JsonValue::Int(span.ts_us));
        entry.Set("dur", JsonValue::Int(span.dur_us));
        entry.Set("tid", JsonValue::Uint(span.tid));
        spans.Append(std::move(entry));
      }
      trace.Set("spans", std::move(spans));
    }
    object.Set("trace", std::move(trace));
  }
  return object.Dump();
}

Result<ResponseEnvelope> ParseResponse(std::string_view text) {
  Result<JsonValue> parsed = JsonValue::Parse(text);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& object = parsed.value();
  if (!object.is_object()) {
    return Status::InvalidArgument("response must be a JSON object");
  }
  Result<std::pair<uint32_t, uint64_t>> prefix = ParseEnvelopePrefix(object);
  if (!prefix.ok()) return prefix.status();
  ResponseEnvelope response;
  response.version = prefix.value().first;
  response.id = prefix.value().second;
  Result<std::string> status = GetString(object, "status");
  if (!status.ok()) return status.status();
  Result<StatusCode> code = ParseStatusCode(status.value());
  if (!code.ok()) return code.status();
  response.status = code.value();
  Result<std::string> message = GetString(object, "message", "");
  if (!message.ok()) return message.status();
  response.message = std::move(message).value();
  if (const JsonValue* payload = object.Find("payload"); payload != nullptr) {
    response.payload = *payload;
  }
  if (const JsonValue* trace = object.Find("trace");
      trace != nullptr && trace->is_object()) {
    if (const JsonValue* id = trace->Find("id");
        id != nullptr && id->is_string()) {
      response.trace_id = ParseTraceId(id->string_value());
    }
    if (const JsonValue* spans = trace->Find("spans");
        spans != nullptr && spans->is_array()) {
      response.trace_spans.reserve(spans->items().size());
      for (const JsonValue& entry : spans->items()) {
        if (!entry.is_object()) continue;
        TraceSpanWire span;
        Result<std::string> name = GetString(entry, "name", "");
        if (name.ok()) span.name = std::move(name).value();
        Result<int64_t> ts = GetInt(entry, "ts", 0);
        if (ts.ok()) span.ts_us = ts.value();
        Result<int64_t> dur = GetInt(entry, "dur", 0);
        if (dur.ok()) span.dur_us = dur.value();
        Result<uint32_t> tid = GetUint<uint32_t>(entry, "tid", 0);
        if (tid.ok()) span.tid = tid.value();
        response.trace_spans.push_back(std::move(span));
      }
    }
  }
  return response;
}

ResponseEnvelope ErrorResponse(uint64_t id, StatusCode status,
                               std::string message) {
  ResponseEnvelope response;
  response.id = id;
  response.status = status;
  response.message = std::move(message);
  return response;
}

}  // namespace kpj::api
