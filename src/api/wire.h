#ifndef KPJ_API_WIRE_H_
#define KPJ_API_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/api.h"
#include "api/json.h"
#include "index/distance_oracle.h"
#include "util/status.h"

namespace kpj::api {

/// The request types kpjd serves (docs/PROTOCOL.md).
enum class RequestType : uint32_t {
  kQuery = 0,    ///< One KpjQuery -> QueryResponse.
  kBatch = 1,    ///< Ordered batch -> BatchResponse.
  kMetrics = 2,  ///< Metrics exposition (json or prom format).
  kHealth = 3,   ///< Liveness + serving epoch.
  kDrain = 4,    ///< Begin graceful drain; acknowledged immediately.
  kSwap = 5,     ///< Hot-swap the serving instance to a new graph file.
  kStats = 6,    ///< Rolling-window (last 60 s) load/latency gauges.
};

const char* RequestTypeName(RequestType type);
Result<RequestType> ParseRequestType(std::string_view name);

/// Payload of a kMetrics request.
struct MetricsRequest {
  std::string format = "json";  ///< "json" or "prom".
};

/// Payload of a kSwap request: paths are resolved by the *server* process.
struct SwapRequest {
  std::string graph;                ///< New graph file (required).
  std::string landmarks;            ///< Optional landmark index file.
  std::optional<OracleKind> oracle; ///< Absent = keep the current kind.
};

/// Payload of a kHealth response.
struct HealthInfo {
  bool serving = false;    ///< False while draining.
  uint64_t epoch = 0;      ///< Current serving-state epoch.
  std::string graph;       ///< Graph file backing the current epoch.
  uint64_t uptime_ms = 0;  ///< Milliseconds since the server started.
  uint64_t in_flight = 0;  ///< Admitted queries currently executing.
  uint64_t nodes = 0;      ///< Node count of the serving graph (lets load
                           ///< generators pick valid ids without a copy).
};

/// Payload of a kStats response: gauges over the trailing 60-second window
/// (a ring of 1 s buckets; expired buckets fall out as time advances), so a
/// loaded daemon can be inspected live without scraping counters twice and
/// differencing. Only *requests* are counted — a batch is one request.
struct StatsInfo {
  uint64_t window_s = 0;     ///< Window span covered by the gauges.
  uint64_t requests = 0;     ///< Query/batch requests finished in-window.
  uint64_t shed = 0;         ///< ... of which admission control shed.
  uint64_t errors = 0;       ///< ... of which failed (non-ok, non-shed).
  double qps = 0.0;          ///< requests / window_s.
  double latency_mean_ms = 0.0;  ///< Queue + execute wall time per request.
  double latency_p50_ms = 0.0;
  double latency_p90_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;
  uint64_t in_flight = 0;    ///< Admitted queries executing right now.
  uint64_t epoch = 0;        ///< Current serving-state epoch.
  /// Requests finished per 1 s bucket, oldest first; size <= window_s
  /// (buckets never written stay absent at the old end).
  std::vector<uint64_t> per_second;
};

/// One span echoed in a response's trace block: the server-side slice of a
/// request's timeline. Timestamps are microseconds on the *server's* trace
/// clock; the client rebases them into its own timeline when merging.
struct TraceSpanWire {
  std::string name;
  int64_t ts_us = 0;
  int64_t dur_us = 0;
  uint32_t tid = 0;
};

/// Payload of a kSwap response.
struct SwapInfo {
  uint64_t old_epoch = 0;
  uint64_t new_epoch = 0;
  double load_ms = 0.0;  ///< Wall time spent building the new state.
};

/// One request frame: {"v":1,"id":7,"type":"query","payload":{...}}.
/// `id` is an opaque client-chosen correlation id echoed in the response.
struct RequestEnvelope {
  uint32_t version = kApiVersion;
  uint64_t id = 0;
  RequestType type = RequestType::kQuery;
  /// Parsed payload object (kind depends on `type`); Null for types that
  /// carry none (health, drain, stats).
  JsonValue payload;
  /// Trace context, serialized as {"trace":{"id":"<16 hex>","collect":true}}.
  /// 0 = no context. Additive same-version fields: old peers ignore them.
  uint64_t trace_id = 0;
  /// True asks the server to echo this request's spans back in the
  /// response's trace block so the client can merge one end-to-end timeline.
  bool collect_spans = false;
};

/// One response frame:
/// {"v":1,"id":7,"status":"ok","message":"","payload":{...}}.
struct ResponseEnvelope {
  uint32_t version = kApiVersion;
  uint64_t id = 0;
  StatusCode status = StatusCode::kOk;
  std::string message;
  JsonValue payload;
  /// Echo of the request's trace id (0 when the request carried none), and
  /// the server-side spans when the request asked to collect. Serialized as
  /// {"trace":{"id":"<16 hex>","spans":[...]}}.
  uint64_t trace_id = 0;
  std::vector<TraceSpanWire> trace_spans;
};

// --- Payload (de)serialization -------------------------------------------

JsonValue ToJson(const QueryRequest& request);
Result<QueryRequest> QueryRequestFromJson(const JsonValue& json);

JsonValue ToJson(const QueryResponse& response);
Result<QueryResponse> QueryResponseFromJson(const JsonValue& json);

JsonValue ToJson(const BatchRequest& request);
Result<BatchRequest> BatchRequestFromJson(const JsonValue& json);

JsonValue ToJson(const BatchResponse& response);
Result<BatchResponse> BatchResponseFromJson(const JsonValue& json);

JsonValue ToJson(const MetricsRequest& request);
Result<MetricsRequest> MetricsRequestFromJson(const JsonValue& json);

JsonValue ToJson(const SwapRequest& request);
Result<SwapRequest> SwapRequestFromJson(const JsonValue& json);

JsonValue ToJson(const HealthInfo& info);
Result<HealthInfo> HealthInfoFromJson(const JsonValue& json);

JsonValue ToJson(const SwapInfo& info);
Result<SwapInfo> SwapInfoFromJson(const JsonValue& json);

JsonValue ToJson(const StatsInfo& info);
Result<StatsInfo> StatsInfoFromJson(const JsonValue& json);

// --- Envelope (de)serialization ------------------------------------------

/// Serializes one request frame body (the length prefix is the socket
/// layer's job; util/socket.h WriteFrame).
std::string SerializeRequest(const RequestEnvelope& request);

/// Parses a request frame body. Enforces the versioning rules: a version
/// above kApiVersion is rejected with kInvalidArgument (the message names
/// both versions); unknown fields are ignored.
Result<RequestEnvelope> ParseRequest(std::string_view text);

std::string SerializeResponse(const ResponseEnvelope& response);
Result<ResponseEnvelope> ParseResponse(std::string_view text);

/// Convenience: an error response echoing `id`.
ResponseEnvelope ErrorResponse(uint64_t id, StatusCode status,
                               std::string message);

}  // namespace kpj::api

#endif  // KPJ_API_WIRE_H_
